(* Hygiene fixtures: one seeded violation per rule, each next to its
   clean twin. *)

(* violation: lib-stdout *)
let greet () = Printf.printf "hello\n"

(* clean twin: stderr is fine in lib code *)
let warn () = Printf.eprintf "careful\n"

(* violation: obj-magic *)
let cast (x : int) : float = Obj.magic x

(* violation: marshal-untrusted *)
let parse (s : string) : int = Marshal.from_string s 0

(* violation: marshal-output (warn severity) *)
let dump (x : int) = Marshal.to_string x []
