lib/analysis/io_log.ml: Array Hashtbl Int64 List Nt_nfs Nt_trace
