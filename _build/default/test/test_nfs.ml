(* NFS protocol tests: file handles, procedure tables, and full
   wire-codec round trips for both NFSv2 and NFSv3. *)

module Fh = Nt_nfs.Fh
module Proc = Nt_nfs.Proc
module Types = Nt_nfs.Types
module Ops = Nt_nfs.Ops
module V2 = Nt_nfs.V2
module V3 = Nt_nfs.V3
module E = Nt_xdr.Encode
module D = Nt_xdr.Decode

(* --- file handles --- *)

let test_fh_make_fileid () =
  let fh = Fh.make ~fsid:3 ~fileid:12345 in
  Alcotest.(check (option int)) "fileid recovered" (Some 12345) (Fh.fileid fh);
  Alcotest.(check int) "32 bytes" 32 (String.length (Fh.to_raw fh))

let test_fh_foreign () =
  Alcotest.(check (option int)) "foreign handle has no fileid" None
    (Fh.fileid (Fh.of_raw "opaque-bytes-from-elsewhere"))

let test_fh_hex_roundtrip () =
  let fh = Fh.make ~fsid:1 ~fileid:999 in
  Alcotest.(check (option string)) "hex roundtrip" (Some (Fh.to_raw fh))
    (Option.map Fh.to_raw (Fh.of_hex (Fh.to_hex_full fh)))

let test_fh_of_hex_invalid () =
  Alcotest.(check bool) "odd length rejected" true (Fh.of_hex "abc" = None);
  Alcotest.(check bool) "non-hex rejected" true (Fh.of_hex "zz" = None)

let test_fh_v2_padding () =
  let short = Fh.of_raw "abc" in
  Alcotest.(check int) "padded to 32" 32 (String.length (Fh.to_v2_raw short))

let test_fh_equality () =
  let a = Fh.make ~fsid:1 ~fileid:5 and b = Fh.make ~fsid:1 ~fileid:5 in
  Alcotest.(check bool) "equal" true (Fh.equal a b);
  Alcotest.(check bool) "distinct" false (Fh.equal a (Fh.make ~fsid:1 ~fileid:6))

(* --- procedures --- *)

let test_proc_v3_numbering () =
  Alcotest.(check (option int)) "READ is 6" (Some 6) (Proc.v3_number Proc.Read);
  Alcotest.(check (option int)) "COMMIT is 21" (Some 21) (Proc.v3_number Proc.Commit);
  Alcotest.(check (option int)) "ROOT absent in v3" None (Proc.v3_number Proc.Root)

let test_proc_v2_numbering () =
  Alcotest.(check (option int)) "WRITE is 8 in v2" (Some 8) (Proc.v2_number Proc.Write);
  Alcotest.(check (option int)) "ACCESS absent in v2" None (Proc.v2_number Proc.Access)

let test_proc_roundtrip () =
  List.iter
    (fun p ->
      match Proc.v3_number p with
      | Some n ->
          Alcotest.(check bool)
            (Proc.to_string p ^ " roundtrips")
            true
            (Proc.of_v3_number n = Some p)
      | None -> ())
    Proc.all;
  List.iter
    (fun p ->
      match Proc.v2_number p with
      | Some n ->
          Alcotest.(check bool)
            (Proc.to_string p ^ " v2 roundtrips")
            true
            (Proc.of_v2_number n = Some p)
      | None -> ())
    Proc.all

let test_proc_classification () =
  Alcotest.(check bool) "read is data" true (Proc.is_data Proc.Read);
  Alcotest.(check bool) "write is data" true (Proc.is_data Proc.Write);
  Alcotest.(check bool) "getattr is metadata" false (Proc.is_data Proc.Getattr);
  Alcotest.(check bool) "lookup is metadata" false (Proc.is_data Proc.Lookup);
  Alcotest.(check bool) "commit is not a data op" false (Proc.is_data Proc.Commit)

(* --- nfsstat --- *)

let test_nfsstat_roundtrip () =
  List.iter
    (fun st ->
      Alcotest.(check bool)
        (Types.nfsstat_to_string st ^ " roundtrips")
        true
        (Types.nfsstat_of_int (Types.nfsstat_to_int st) = st))
    [ Types.Ok_; Types.Err_noent; Types.Err_stale; Types.Err_dquot; Types.Err_jukebox;
      Types.Err_unknown 424242 ]

let test_time_conversion () =
  let t = Types.time_of_float 1003622400.123456789 in
  Alcotest.(check (float 1e-6) "time roundtrip") 1003622400.123456789 (Types.time_to_float t)

(* --- unified op helpers --- *)

let dir_fh = Fh.make ~fsid:1 ~fileid:2
let file_fh = Fh.make ~fsid:1 ~fileid:3

let test_call_fh () =
  Alcotest.(check bool) "read fh" true
    (Ops.call_fh (Ops.Read { fh = file_fh; offset = 0L; count = 1 }) = Some file_fh);
  Alcotest.(check bool) "lookup dir" true
    (Ops.call_fh (Ops.Lookup { dir = dir_fh; name = "x" }) = Some dir_fh);
  Alcotest.(check bool) "null has none" true (Ops.call_fh Ops.Null = None)

let test_call_name () =
  Alcotest.(check (option string)) "create name" (Some "f")
    (Ops.call_name (Ops.Create { dir = dir_fh; name = "f"; mode = 0o644; exclusive = false }));
  Alcotest.(check (option string)) "read has none" None
    (Ops.call_name (Ops.Read { fh = file_fh; offset = 0L; count = 1 }))

let test_describe_call () =
  let s = Ops.describe_call (Ops.Read { fh = file_fh; offset = 8192L; count = 4096 }) in
  Alcotest.(check bool) "mentions proc" true (String.length s > 4 && String.sub s 0 4 = "read")

(* --- v3 codec round trips --- *)

let v3_call_roundtrip call =
  let e = E.create () in
  V3.encode_call e call;
  let proc = Ops.proc_of_call call in
  V3.decode_call ~proc (D.of_string (E.contents e))

let sample_attr =
  { Types.default_fattr with size = 123456L; fileid = 42L; mtime = Types.time_of_float 1000. }

let all_calls =
  [
    Ops.Null;
    Ops.Getattr file_fh;
    Ops.Setattr { fh = file_fh; attrs = { Types.empty_sattr with set_size = Some 100L } };
    Ops.Lookup { dir = dir_fh; name = "file.txt" };
    Ops.Access { fh = file_fh; access = 0x1F };
    Ops.Readlink file_fh;
    Ops.Read { fh = file_fh; offset = 65536L; count = 8192 };
    Ops.Write { fh = file_fh; offset = 8192L; count = 4096; stable = Types.Unstable };
    Ops.Create { dir = dir_fh; name = "new"; mode = 0o600; exclusive = false };
    Ops.Create { dir = dir_fh; name = "excl"; mode = 0o644; exclusive = true };
    Ops.Mkdir { dir = dir_fh; name = "subdir"; mode = 0o755 };
    Ops.Symlink { dir = dir_fh; name = "link"; target = "../target" };
    Ops.Mknod { dir = dir_fh; name = "fifo" };
    Ops.Remove { dir = dir_fh; name = "old" };
    Ops.Rmdir { dir = dir_fh; name = "olddir" };
    Ops.Rename { from_dir = dir_fh; from_name = "a"; to_dir = dir_fh; to_name = "b" };
    Ops.Link { fh = file_fh; to_dir = dir_fh; to_name = "hard" };
    Ops.Readdir { dir = dir_fh; cookie = 7L; count = 4096 };
    Ops.Readdirplus { dir = dir_fh; cookie = 0L; count = 8192 };
    Ops.Statfs file_fh;
    Ops.Fsinfo file_fh;
    Ops.Pathconf file_fh;
    Ops.Commit { fh = file_fh; offset = 0L; count = 32768 };
  ]

let test_v3_all_calls_roundtrip () =
  List.iter
    (fun call ->
      let call' = v3_call_roundtrip call in
      let name = Proc.to_string (Ops.proc_of_call call) in
      Alcotest.(check bool) (name ^ " same proc") true
        (Ops.proc_of_call call' = Ops.proc_of_call call);
      Alcotest.(check bool) (name ^ " same fh") true (Ops.call_fh call' = Ops.call_fh call);
      Alcotest.(check bool) (name ^ " same name") true (Ops.call_name call' = Ops.call_name call))
    all_calls

let test_v3_read_args_exact () =
  match v3_call_roundtrip (Ops.Read { fh = file_fh; offset = 99999L; count = 1234 }) with
  | Ops.Read r ->
      Alcotest.(check int64) "offset" 99999L r.offset;
      Alcotest.(check int) "count" 1234 r.count
  | _ -> Alcotest.fail "expected read"

let test_v3_write_stable_modes () =
  List.iter
    (fun stable ->
      match v3_call_roundtrip (Ops.Write { fh = file_fh; offset = 0L; count = 10; stable }) with
      | Ops.Write w -> Alcotest.(check bool) "stable survives" true (w.stable = stable)
      | _ -> Alcotest.fail "expected write")
    [ Types.Unstable; Types.Data_sync; Types.File_sync ]

let v3_result_roundtrip ~proc result =
  let e = E.create () in
  V3.encode_result e ~proc result;
  V3.decode_result ~proc (D.of_string (E.contents e))

let test_v3_getattr_result () =
  match v3_result_roundtrip ~proc:Proc.Getattr (Ok (Ops.R_attr sample_attr)) with
  | Ok (Ops.R_attr a) ->
      Alcotest.(check int64) "size" sample_attr.size a.size;
      Alcotest.(check int64) "fileid" sample_attr.fileid a.fileid
  | _ -> Alcotest.fail "expected attr"

let test_v3_lookup_result () =
  let r =
    Ok (Ops.R_lookup { fh = file_fh; obj = Some sample_attr; dir = Some Types.default_fattr })
  in
  match v3_result_roundtrip ~proc:Proc.Lookup r with
  | Ok (Ops.R_lookup { fh; obj = Some a; dir = Some _ }) ->
      Alcotest.(check bool) "fh" true (Fh.equal fh file_fh);
      Alcotest.(check int64) "obj size" sample_attr.size a.size
  | _ -> Alcotest.fail "expected lookup result"

let test_v3_read_result () =
  match
    v3_result_roundtrip ~proc:Proc.Read (Ok (Ops.R_read { attr = Some sample_attr; count = 777; eof = true }))
  with
  | Ok (Ops.R_read r) ->
      Alcotest.(check int) "count" 777 r.count;
      Alcotest.(check bool) "eof" true r.eof;
      Alcotest.(check bool) "attr present" true (r.attr <> None)
  | _ -> Alcotest.fail "expected read result"

let test_v3_write_result () =
  match
    v3_result_roundtrip ~proc:Proc.Write
      (Ok (Ops.R_write { count = 512; committed = Types.Data_sync; attr = Some sample_attr }))
  with
  | Ok (Ops.R_write w) ->
      Alcotest.(check int) "count" 512 w.count;
      Alcotest.(check bool) "committed" true (w.committed = Types.Data_sync)
  | _ -> Alcotest.fail "expected write result"

let test_v3_readdir_result () =
  let entries =
    [
      { Ops.entry_fileid = 10L; entry_name = "a"; entry_cookie = 1L };
      { Ops.entry_fileid = 11L; entry_name = "bb"; entry_cookie = 2L };
      { Ops.entry_fileid = 12L; entry_name = "ccc"; entry_cookie = 3L };
    ]
  in
  List.iter
    (fun proc ->
      match v3_result_roundtrip ~proc (Ok (Ops.R_readdir { entries; eof = false })) with
      | Ok (Ops.R_readdir { entries = e'; eof }) ->
          Alcotest.(check int) "entry count" 3 (List.length e');
          Alcotest.(check bool) "eof" false eof;
          Alcotest.(check string) "names preserved" "bb" (List.nth e' 1).Ops.entry_name
      | _ -> Alcotest.fail "expected readdir result")
    [ Proc.Readdir; Proc.Readdirplus ]

let test_v3_error_result () =
  match v3_result_roundtrip ~proc:Proc.Lookup (Error Types.Err_noent) with
  | Error Types.Err_noent -> ()
  | _ -> Alcotest.fail "expected ENOENT"

let test_v3_all_errors_roundtrip () =
  List.iter
    (fun st ->
      match v3_result_roundtrip ~proc:Proc.Getattr (Error st) with
      | Error st' -> Alcotest.(check bool) "status" true (st = st')
      | Ok _ -> Alcotest.fail "expected error")
    [ Types.Err_perm; Types.Err_acces; Types.Err_stale; Types.Err_notempty ]

(* --- v2 codec --- *)

let v2_call_roundtrip call =
  let e = E.create () in
  V2.encode_call e call;
  let proc = Ops.proc_of_call call in
  V2.decode_call ~proc (D.of_string (E.contents e))

let test_v2_calls_roundtrip () =
  let v2_calls =
    List.filter
      (fun c -> Proc.v2_number (Ops.proc_of_call c) <> None)
      (List.filter
         (fun c ->
           match c with
           | Ops.Access _ | Ops.Mknod _ | Ops.Readdirplus _ | Ops.Fsinfo _ | Ops.Pathconf _
           | Ops.Commit _ ->
               false
           | _ -> true)
         all_calls)
  in
  Alcotest.(check bool) "several v2 calls" true (List.length v2_calls > 10);
  List.iter
    (fun call ->
      let call' = v2_call_roundtrip call in
      let name = Proc.to_string (Ops.proc_of_call call) in
      Alcotest.(check bool) (name ^ " proc") true (Ops.proc_of_call call' = Ops.proc_of_call call);
      Alcotest.(check bool) (name ^ " name") true (Ops.call_name call' = Ops.call_name call))
    v2_calls

let test_v2_unsupported_raises () =
  Alcotest.(check bool) "ACCESS unsupported in v2" true
    (try
       ignore (v2_call_roundtrip (Ops.Access { fh = file_fh; access = 1 }));
       false
     with V2.Unsupported _ -> true)

let test_v2_write_count_from_data () =
  match v2_call_roundtrip (Ops.Write { fh = file_fh; offset = 100L; count = 300; stable = Types.File_sync }) with
  | Ops.Write w ->
      Alcotest.(check int) "count from opaque data" 300 w.count;
      Alcotest.(check int64) "offset" 100L w.offset
  | _ -> Alcotest.fail "expected write"

let test_v2_fattr_roundtrip () =
  let e = E.create () in
  V2.encode_fattr e sample_attr;
  let a = V2.decode_fattr (D.of_string (E.contents e)) in
  Alcotest.(check int64) "size" sample_attr.size a.size;
  Alcotest.(check bool) "type" true (a.ftype = Types.Reg)

let test_v2_size_clamp () =
  let big = { sample_attr with size = 0x200000000L } in
  let e = E.create () in
  V2.encode_fattr e big;
  let a = V2.decode_fattr (D.of_string (E.contents e)) in
  Alcotest.(check int64) "clamped to 32 bits" 0xFFFFFFFFL a.size

let test_v2_read_result () =
  let e = E.create () in
  V2.encode_result e ~proc:Proc.Read
    (Ok (Ops.R_read { attr = Some sample_attr; count = 2048; eof = false }));
  match V2.decode_result ~proc:Proc.Read (D.of_string (E.contents e)) with
  | Ok (Ops.R_read r) -> Alcotest.(check int) "count from data" 2048 r.count
  | _ -> Alcotest.fail "expected read result"

let test_v2_error_mapping () =
  let e = E.create () in
  V2.encode_result e ~proc:Proc.Lookup (Error Types.Err_jukebox);
  match V2.decode_result ~proc:Proc.Lookup (D.of_string (E.contents e)) with
  | Error Types.Err_io -> () (* v3-only codes degrade to EIO *)
  | _ -> Alcotest.fail "expected EIO"

(* --- mount protocol --- *)

module Mount = Nt_nfs.Mount

let test_mount_proc_numbers () =
  Alcotest.(check int) "program" 100005 Mount.program;
  List.iter
    (fun p ->
      Alcotest.(check bool) "proc roundtrip" true
        (Mount.proc_of_number (Mount.proc_number p) = Some p))
    [ Mount.Null; Mount.Mnt; Mount.Dump; Mount.Umnt; Mount.Umntall; Mount.Export ];
  Alcotest.(check bool) "unknown rejected" true (Mount.proc_of_number 42 = None)

let test_mount_mnt_roundtrip () =
  let e = E.create () in
  Mount.encode_mnt_call e "/export/home02";
  Alcotest.(check string) "path" "/export/home02" (Mount.decode_mnt_call (D.of_string (E.contents e)));
  let fh = Fh.make ~fsid:2 ~fileid:1 in
  let e2 = E.create () in
  Mount.encode_mnt_result e2 (Ok { fh; auth_flavors = [ 0; 1 ] });
  (match Mount.decode_mnt_result (D.of_string (E.contents e2)) with
  | Ok r ->
      Alcotest.(check bool) "fh" true (Fh.equal r.fh fh);
      Alcotest.(check (list int)) "flavors" [ 0; 1 ] r.auth_flavors
  | Error _ -> Alcotest.fail "expected ok");
  let e3 = E.create () in
  Mount.encode_mnt_result e3 (Error Types.Err_acces);
  match Mount.decode_mnt_result (D.of_string (E.contents e3)) with
  | Error Types.Err_acces -> ()
  | _ -> Alcotest.fail "expected EACCES"

let test_mount_export_list () =
  let exports =
    [
      { Mount.dir = "/export/home02"; groups = [ "campus-mail"; "campus-login" ] };
      { Mount.dir = "/export/eecs"; groups = [] };
    ]
  in
  let e = E.create () in
  Mount.encode_export_result e exports;
  let back = Mount.decode_export_result (D.of_string (E.contents e)) in
  Alcotest.(check int) "two exports" 2 (List.length back);
  Alcotest.(check (list string)) "groups" [ "campus-mail"; "campus-login" ]
    (List.hd back).Mount.groups;
  Alcotest.(check string) "second dir" "/export/eecs" (List.nth back 1).Mount.dir

let test_mount_empty_export_list () =
  let e = E.create () in
  Mount.encode_export_result e [];
  Alcotest.(check int) "empty" 0 (List.length (Mount.decode_export_result (D.of_string (E.contents e))))

(* --- property: random read/write args roundtrip both versions --- *)

let prop_v3_read_args =
  QCheck.Test.make ~name:"v3 read args roundtrip" ~count:300
    QCheck.(pair (int_range 0 1_000_000_000) (int_range 1 100_000))
    (fun (off, count) ->
      match v3_call_roundtrip (Ops.Read { fh = file_fh; offset = Int64.of_int off; count }) with
      | Ops.Read r -> r.offset = Int64.of_int off && r.count = count
      | _ -> false)

let prop_v3_name_calls =
  QCheck.Test.make ~name:"v3 names with odd bytes roundtrip" ~count:300
    QCheck.(string_of_size Gen.(1 -- 100))
    (fun name ->
      match v3_call_roundtrip (Ops.Lookup { dir = dir_fh; name }) with
      | Ops.Lookup l -> String.equal l.name name
      | _ -> false)

let () =
  Alcotest.run "nt_nfs"
    [
      ( "fh",
        [
          Alcotest.test_case "make/fileid" `Quick test_fh_make_fileid;
          Alcotest.test_case "foreign" `Quick test_fh_foreign;
          Alcotest.test_case "hex roundtrip" `Quick test_fh_hex_roundtrip;
          Alcotest.test_case "invalid hex" `Quick test_fh_of_hex_invalid;
          Alcotest.test_case "v2 padding" `Quick test_fh_v2_padding;
          Alcotest.test_case "equality" `Quick test_fh_equality;
        ] );
      ( "proc",
        [
          Alcotest.test_case "v3 numbering" `Quick test_proc_v3_numbering;
          Alcotest.test_case "v2 numbering" `Quick test_proc_v2_numbering;
          Alcotest.test_case "numbering roundtrip" `Quick test_proc_roundtrip;
          Alcotest.test_case "classification" `Quick test_proc_classification;
        ] );
      ( "types",
        [
          Alcotest.test_case "nfsstat roundtrip" `Quick test_nfsstat_roundtrip;
          Alcotest.test_case "time conversion" `Quick test_time_conversion;
        ] );
      ( "ops",
        [
          Alcotest.test_case "call_fh" `Quick test_call_fh;
          Alcotest.test_case "call_name" `Quick test_call_name;
          Alcotest.test_case "describe" `Quick test_describe_call;
        ] );
      ( "v3",
        [
          Alcotest.test_case "all calls roundtrip" `Quick test_v3_all_calls_roundtrip;
          Alcotest.test_case "read args exact" `Quick test_v3_read_args_exact;
          Alcotest.test_case "write stable modes" `Quick test_v3_write_stable_modes;
          Alcotest.test_case "getattr result" `Quick test_v3_getattr_result;
          Alcotest.test_case "lookup result" `Quick test_v3_lookup_result;
          Alcotest.test_case "read result" `Quick test_v3_read_result;
          Alcotest.test_case "write result" `Quick test_v3_write_result;
          Alcotest.test_case "readdir result" `Quick test_v3_readdir_result;
          Alcotest.test_case "error result" `Quick test_v3_error_result;
          Alcotest.test_case "all errors roundtrip" `Quick test_v3_all_errors_roundtrip;
          QCheck_alcotest.to_alcotest prop_v3_read_args;
          QCheck_alcotest.to_alcotest prop_v3_name_calls;
        ] );
      ( "mount",
        [
          Alcotest.test_case "proc numbers" `Quick test_mount_proc_numbers;
          Alcotest.test_case "mnt roundtrip" `Quick test_mount_mnt_roundtrip;
          Alcotest.test_case "export list" `Quick test_mount_export_list;
          Alcotest.test_case "empty export list" `Quick test_mount_empty_export_list;
        ] );
      ( "v2",
        [
          Alcotest.test_case "calls roundtrip" `Quick test_v2_calls_roundtrip;
          Alcotest.test_case "unsupported raises" `Quick test_v2_unsupported_raises;
          Alcotest.test_case "write count from data" `Quick test_v2_write_count_from_data;
          Alcotest.test_case "fattr roundtrip" `Quick test_v2_fattr_roundtrip;
          Alcotest.test_case "size clamp" `Quick test_v2_size_clamp;
          Alcotest.test_case "read result" `Quick test_v2_read_result;
          Alcotest.test_case "error mapping" `Quick test_v2_error_mapping;
        ] );
    ]
