(* Allowlist fixture: the same hot-string violation as Fix_hotdep, but
   accepted through [@@nt.alloc_ok] — it must be counted, not fire. *)

type t = { mutable seen : int }

let create () = { seen = 0 }

(* suppressed: alloc-hot-string *)
let head (s : string) = String.sub s 0 1
[@@nt.alloc_ok "fixture: accepted per-record copy"]

let observe t name = t.seen <- t.seen + String.length (head name)
