test/test_nfs.ml: Alcotest Gen Int64 List Nt_nfs Nt_xdr Option QCheck QCheck_alcotest String
