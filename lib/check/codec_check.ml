(* Codec / format drift.

   Arm coverage: every constructor of the configured wire types
   (Ops.call, Ops.success) must appear in the codec unit both as a
   *pattern* (the encode dispatch matches on the value) and as a
   *construction* (the decode dispatch rebuilds it).  The compiler
   already fails a deleted encode arm under -warn-error; the deleted
   decode arm — a silent `| tag -> salvage` fallthrough — is exactly
   the fork this rule exists to catch.

   Tag registry: every string literal shaped like a version tag
   (name/N, name starting with a letter, charset [A-Za-z0-9_.-], one
   slash) must live in the Nt_formats registry and be *referenced*
   everywhere else.  A literal outside the registry is flagged as
   drift when its name part is registered (duplicate or version fork)
   and as unregistered otherwise; registered tags embedded in larger
   literals are scanned too, so "schema": "nt_obs/2" inside a JSON
   template cannot fork the version silently.  Format *strings*
   (Printf) are not Const_string at the typedtree level and are out of
   scope — which is why the bench writers pass their tag through %S. *)

let tag_char c =
  (c >= 'a' && c <= 'z')
  || (c >= 'A' && c <= 'Z')
  || (c >= '0' && c <= '9')
  || c = '_' || c = '.' || c = '-'

let is_letter c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
let is_digit c = c >= '0' && c <= '9'

(* "nttb/1" (optional trailing newline) -> Some ("nttb", "1") *)
let parse_tag s =
  let s =
    if String.length s > 0 && s.[String.length s - 1] = '\n' then
      String.sub s 0 (String.length s - 1)
    else s
  in
  match String.index_opt s '/' with
  | None -> None
  | Some i ->
      if
        i > 0
        && i < String.length s - 1
        && String.index_opt (String.sub s (i + 1) (String.length s - i - 1)) '/' = None
        && is_letter s.[0]
        && (let ok = ref true in
            String.iteri (fun j c -> if j < i && not (tag_char c) then ok := false) s;
            !ok)
        &&
        let ok = ref true in
        String.iteri (fun j c -> if j > i && not (is_digit c) then ok := false) s;
        !ok
      then Some (String.sub s 0 i, String.sub s (i + 1) (String.length s - i - 1))
      else None

(* Occurrences of a registered name followed by "/<digits>" embedded in
   a larger literal, with charset boundaries on both sides. *)
let embedded_versions ~name s =
  let nl = String.length name and sl = String.length s in
  let out = ref [] in
  let i = ref 0 in
  while !i + nl + 1 < sl do
    let j = !i in
    if
      String.sub s j nl = name
      && s.[j + nl] = '/'
      && (j = 0 || not (tag_char s.[j - 1]))
      && is_digit s.[j + nl + 1]
    then begin
      let k = ref (j + nl + 1) in
      while !k < sl && is_digit s.[!k] do incr k done;
      if !k = sl || not (tag_char s.[!k]) then
        out := String.sub s (j + nl + 1) (!k - (j + nl + 1)) :: !out;
      i := !k
    end
    else incr i
  done;
  List.rev !out

(* --- typedtree access helpers --- *)

let impl_of units name =
  List.find_map
    (fun (u : Loader.unit_info) ->
      match u.Loader.payload with
      | Loader.Impl str when u.Loader.name = name -> Some (u, str)
      | _ -> None)
    units

(* Top-level [let name = "literal"] bindings of the registry unit. *)
let registry_entries (str : Typedtree.structure) =
  List.concat_map
    (fun (item : Typedtree.structure_item) ->
      match item.str_desc with
      | Tstr_value (_, vbs) ->
          List.filter_map
            (fun (vb : Typedtree.value_binding) ->
              match (vb.vb_pat.pat_desc, vb.vb_expr.exp_desc) with
              | Tpat_var (id, _), Texp_constant (Const_string (s, _, _)) ->
                  Some (Ident.name id, s)
              | _ -> None)
            vbs
      | _ -> [])
    str.str_items

(* Constructors of the named variant types, from impl or intf. *)
let constructors_of (u : Loader.unit_info) ~type_names =
  let of_decl (d : Typedtree.type_declaration) =
    if List.mem d.typ_name.txt type_names then
      match d.typ_kind with
      | Ttype_variant cds ->
          List.map
            (fun (cd : Typedtree.constructor_declaration) ->
              (d.typ_name.txt, cd.cd_name.txt))
            cds
      | _ -> []
    else []
  in
  match u.Loader.payload with
  | Loader.Impl str ->
      List.concat_map
        (fun (item : Typedtree.structure_item) ->
          match item.str_desc with
          | Tstr_type (_, ds) -> List.concat_map of_decl ds
          | _ -> [])
        str.str_items
  | Loader.Intf sg ->
      List.concat_map
        (fun (item : Typedtree.signature_item) ->
          match item.sig_desc with
          | Tsig_type (_, ds) -> List.concat_map of_decl ds
          | _ -> [])
        sg.sig_items

(* Constructor names of the target types used in pattern position /
   expression position anywhere in a structure.  Membership is keyed
   on the constructor's result-type name so an unrelated Alpha
   somewhere else cannot mask a missing arm. *)
let constructor_uses (str : Typedtree.structure) ~type_names =
  let pats = Hashtbl.create 64 and exprs = Hashtbl.create 64 in
  let res_type (cd : Types.constructor_description) =
    match Types.get_desc cd.cstr_res with
    | Types.Tconstr (p, _, _) -> Some (Path.last p)
    | _ -> None
  in
  let note tbl cd =
    match res_type cd with
    | Some t when List.mem t type_names -> Hashtbl.replace tbl (t, cd.Types.cstr_name) ()
    | _ -> ()
  in
  let pat (type k) sub (p : k Typedtree.general_pattern) =
    (match p.pat_desc with
    | Typedtree.Tpat_construct (_, cd, _, _) -> note pats cd
    | _ -> ());
    Tast_iterator.default_iterator.pat sub p
  in
  let expr sub (e : Typedtree.expression) =
    (match e.exp_desc with
    | Typedtree.Texp_construct (_, cd, _) -> note exprs cd
    | _ -> ());
    Tast_iterator.default_iterator.expr sub e
  in
  let it = { Tast_iterator.default_iterator with pat; expr } in
  it.structure it str;
  (pats, exprs)

(* --- the checks --- *)

let unit_loc (u : Loader.unit_info) =
  {
    Location.none with
    loc_start = { Lexing.pos_fname = u.Loader.source; pos_lnum = 1; pos_bol = 0; pos_cnum = 0 };
  }

let check_codecs sink ~codecs ~units ~config_finding =
  List.iter
    (fun (ops_unit, type_names, codec_unit) ->
      let ops =
        List.find_opt (fun (u : Loader.unit_info) -> u.Loader.name = ops_unit) units
      in
      match (ops, impl_of units codec_unit) with
      | None, _ ->
          config_finding
            (Printf.sprintf "codec spec: type unit %s matched no compiled module" ops_unit)
      | _, None ->
          config_finding
            (Printf.sprintf "codec spec: codec unit %s matched no compiled module" codec_unit)
      | Some ops, Some (cu, cstr_tree) ->
          let ctors = constructors_of ops ~type_names in
          if ctors = [] then
            config_finding
              (Printf.sprintf "codec spec: no constructors found for types [%s] in %s"
                 (String.concat "; " type_names)
                 ops_unit)
          else begin
            let pats, exprs = constructor_uses cstr_tree ~type_names in
            List.iter
              (fun (ty, c) ->
                if not (Hashtbl.mem pats (ty, c)) then
                  sink.Finding.emit Rule.codec_arm_missing (unit_loc cu)
                    (Printf.sprintf "%s.%s (%s) has no encode arm: %s never matches it" ops_unit
                       c ty cu.Loader.name);
                if not (Hashtbl.mem exprs (ty, c)) then
                  sink.Finding.emit Rule.codec_arm_missing (unit_loc cu)
                    (Printf.sprintf
                       "%s.%s (%s) has no decode arm: %s never constructs it" ops_unit c ty
                       cu.Loader.name))
              ctors
          end)
    codecs

let check_formats sink ~formats_unit ~units ~config_finding =
  match impl_of units formats_unit with
  | None ->
      config_finding
        (Printf.sprintf "format registry unit %s matched no compiled module" formats_unit)
  | Some (_, reg_tree) ->
      let registry = List.filter_map (fun (_, s) -> parse_tag s) (registry_entries reg_tree) in
      if registry = [] then
        config_finding
          (Printf.sprintf "format registry unit %s defines no version tags" formats_unit);
      let scan_unit (u : Loader.unit_info) (str : Typedtree.structure) =
        (* Walk per top-level binding so [@@nt.allow] on the binding can
           accept a deliberate literal. *)
        let scan_expr ~allows (e0 : Typedtree.expression) =
          let report rule loc detail =
            if Syntax.allowed allows rule then sink.Finding.allow rule
            else sink.Finding.emit rule loc detail
          in
          let expr sub (e : Typedtree.expression) =
            (match e.exp_desc with
            | Texp_constant (Const_string (s, _, _)) -> (
                match parse_tag s with
                | Some (n, v) -> (
                    match List.assoc_opt n registry with
                    | Some rv when rv = v ->
                        report Rule.format_literal_drift e.exp_loc
                          (Printf.sprintf
                             "\"%s/%s\" duplicates the registered tag; reference the \
                              Nt_formats registry instead"
                             n v)
                    | Some rv ->
                        report Rule.format_literal_drift e.exp_loc
                          (Printf.sprintf
                             "\"%s/%s\" forks the registered version %s/%s" n v n rv)
                    | None ->
                        report Rule.format_unregistered e.exp_loc
                          (Printf.sprintf
                             "\"%s/%s\" is not in the Nt_formats registry" n v))
                | None ->
                    List.iter
                      (fun (rn, rv) ->
                        List.iter
                          (fun v ->
                            if v <> rv then
                              report Rule.format_literal_drift e.exp_loc
                                (Printf.sprintf
                                   "literal embeds %s/%s but the registry says %s/%s" rn v
                                   rn rv))
                          (embedded_versions ~name:rn s))
                      registry)
            | _ -> ());
            Tast_iterator.default_iterator.expr sub e
          in
          let it = { Tast_iterator.default_iterator with expr } in
          it.expr it e0
        in
        let rec scan_structure (str : Typedtree.structure) =
          List.iter
            (fun (item : Typedtree.structure_item) ->
              match item.str_desc with
              | Tstr_value (_, vbs) ->
                  List.iter
                    (fun (vb : Typedtree.value_binding) ->
                      scan_expr ~allows:(Syntax.allows vb.vb_attributes) vb.vb_expr)
                    vbs
              | Tstr_module mb -> scan_module_expr mb.mb_expr
              | Tstr_recmodule mbs ->
                  List.iter
                    (fun (mb : Typedtree.module_binding) -> scan_module_expr mb.mb_expr)
                    mbs
              | Tstr_include incl -> scan_module_expr incl.incl_mod
              | _ -> ())
            str.str_items
        and scan_module_expr (me : Typedtree.module_expr) =
          match me.mod_desc with
          | Tmod_structure str -> scan_structure str
          | Tmod_constraint (me, _, _, _) -> scan_module_expr me
          | _ -> ()
        in
        ignore u;
        scan_structure str
      in
      List.iter
        (fun (u : Loader.unit_info) ->
          match u.Loader.payload with
          | Loader.Impl str when u.Loader.name <> formats_unit -> scan_unit u str
          | _ -> ())
        units

let check sink ~codecs ~formats_unit ~units ~config_finding =
  check_codecs sink ~codecs ~units ~config_finding;
  check_formats sink ~formats_unit ~units ~config_finding
