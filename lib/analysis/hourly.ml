module Record = Nt_trace.Record
module Proc = Nt_nfs.Proc
module Tw = Nt_util.Trace_week
module Stats = Nt_util.Stats

type bucket = {
  mutable ops : int;
  mutable reads : int;
  mutable writes : int;
  mutable bytes_read : float;
  mutable bytes_written : float;
}

type t = { buckets : (int, bucket) Hashtbl.t }

let create () = { buckets = Hashtbl.create 256 }

let bucket_for t hour =
  match Hashtbl.find_opt t.buckets hour with
  | Some b -> b
  | None ->
      let b = { ops = 0; reads = 0; writes = 0; bytes_read = 0.; bytes_written = 0. } in
      Hashtbl.add t.buckets hour b;
      b
[@@nt.bounded "one bucket per trace hour (168 for a paper-length week)"]

let observe t (r : Record.t) =
  let b = bucket_for t (Tw.hour_index r.time) in
  b.ops <- b.ops + 1;
  match Proc.kind (Record.proc r) with
  | Proc.Data_read ->
      b.reads <- b.reads + 1;
      b.bytes_read <- b.bytes_read +. float_of_int (Record.io_bytes r)
  | Proc.Data_write ->
      b.writes <- b.writes + 1;
      b.bytes_written <- b.bytes_written +. float_of_int (Record.io_bytes r)
  | Proc.Metadata_read | Proc.Metadata_write -> ()

let merge a b =
  Hashtbl.iter
    (fun hour (src : bucket) ->
      let dst = bucket_for a hour in
      dst.ops <- dst.ops + src.ops;
      dst.reads <- dst.reads + src.reads;
      dst.writes <- dst.writes + src.writes;
      dst.bytes_read <- dst.bytes_read +. src.bytes_read;
      dst.bytes_written <- dst.bytes_written +. src.bytes_written)
    b.buckets;
  a

type hour_point = {
  hour : int;
  ops : int;
  reads : int;
  writes : int;
  bytes_read : float;
  bytes_written : float;
}

let series t =
  let hours = Hashtbl.fold (fun h _ acc -> h :: acc) t.buckets [] in
  match hours with
  | [] -> []
  | h0 :: _ ->
      let lo = List.fold_left min h0 hours in
      let hi = List.fold_left max h0 hours in
      List.init (hi - lo + 1) (fun i ->
          let hour = lo + i in
          match Hashtbl.find_opt t.buckets hour with
          | Some b ->
              {
                hour;
                ops = b.ops;
                reads = b.reads;
                writes = b.writes;
                bytes_read = b.bytes_read;
                bytes_written = b.bytes_written;
              }
          | None -> { hour; ops = 0; reads = 0; writes = 0; bytes_read = 0.; bytes_written = 0. })

let rw_ratio (p : hour_point) =
  if p.writes = 0 then 0. else float_of_int p.reads /. float_of_int p.writes

type variance_row = { mean : float; stddev_pct : float }

type variance = {
  total_ops_k : variance_row;
  data_read_mb : variance_row;
  read_ops_k : variance_row;
  data_written_mb : variance_row;
  write_ops_k : variance_row;
  rw_op_ratio : variance_row;
}

let hour_is_peak hour =
  let time = Tw.week_start +. (float_of_int hour *. 3600.) in
  Tw.is_peak time

let variance_of t ~filter =
  let acc () = Stats.create () in
  let total = acc () and dr = acc () and ro = acc () and dw = acc () and wo = acc () and rw = acc () in
  List.iter
    (fun (p : hour_point) ->
      if filter p.hour then begin
        Stats.add total (float_of_int p.ops /. 1000.);
        Stats.add dr (p.bytes_read /. (1024. *. 1024.));
        Stats.add ro (float_of_int p.reads /. 1000.);
        Stats.add dw (p.bytes_written /. (1024. *. 1024.));
        Stats.add wo (float_of_int p.writes /. 1000.);
        if p.writes > 0 then Stats.add rw (rw_ratio p)
      end)
    (series t);
  let row s = { mean = Stats.mean s; stddev_pct = Stats.stddev_pct_of_mean s } in
  {
    total_ops_k = row total;
    data_read_mb = row dr;
    read_ops_k = row ro;
    data_written_mb = row dw;
    write_ops_k = row wo;
    rw_op_ratio = row rw;
  }

let all_hours t = variance_of t ~filter:(fun _ -> true)
let peak_hours t = variance_of t ~filter:hour_is_peak

let variance_reduction t =
  let all = (all_hours t).total_ops_k.stddev_pct in
  let peak = (peak_hours t).total_ops_k.stddev_pct in
  if peak = 0. then 0. else all /. peak

let footprint t =
  let n = Hashtbl.length t.buckets in
  Nt_obs.Footprint.v ~cards:n ~words:(8 + (n * 11))
