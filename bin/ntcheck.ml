(* ntcheck: typedtree-level static analyzer for domain-safety, merge
   laws and decode-path purity.  Points at a dune build directory,
   loads every .cmt/.cmti via compiler-libs and runs the nt_check rule
   registry.

   Examples:
     ntcheck _build/default
     ntcheck --json --fail-on warn _build/default
     ntcheck --rules *)

open Cmdliner
module Engine = Nt_check.Engine
module Rule = Nt_check.Rule
module Finding = Nt_check.Finding

let rule_rows () =
  List.map
    (fun (r : Rule.t) ->
      {
        Rules_cli.id = r.id;
        family = Rule.family_to_string r.family;
        severity = Rule.severity_to_string r.severity;
        doc = r.doc;
      })
    Rule.all

(* The exn-report artifact: one JSON object per reachable function with
   its residual may-raise set, under the registered schema tag. *)
let exn_report_json rows =
  let row (display, file, line, exns) =
    Printf.sprintf {|{"function":%S,"file":%S,"line":%d,"may_raise":[%s]}|} display file line
      (String.concat "," (List.map (Printf.sprintf "%S") exns))
  in
  Printf.sprintf {|{"schema": %S, "functions": [%s]}|} Nt_formats.Formats.exn_report
    (String.concat "," (List.map row rows))

let run build_dir format json json_out exn_report_out fail_on enabled_only disabled roots
    excludes max_per_rule verbose list =
  if list then begin
    Rules_cli.print (rule_rows ());
    0
  end
  else
    let unknown =
      List.filter
        (fun id -> Rule.find id = None)
        (disabled @ Option.value enabled_only ~default:[])
    in
    if unknown <> [] then begin
      Printf.eprintf "ntcheck: unknown rule(s): %s (try --rules)\n%!"
        (String.concat ", " unknown);
      2
    end
    else if not (Sys.file_exists build_dir && Sys.is_directory build_dir) then begin
      Printf.eprintf "ntcheck: %s is not a directory (point it at _build/default)\n%!"
        build_dir;
      2
    end
    else begin
      let config =
        {
          Engine.default_config with
          enabled_only;
          disabled;
          excludes = Engine.default_config.Engine.excludes @ excludes;
          max_per_rule;
        }
      in
      let config =
        match roots with [] -> config | roots -> { config with Engine.roots = roots }
      in
      let t = Engine.run config build_dir in
      if Engine.units_scanned t = 0 then begin
        Printf.eprintf
          "ntcheck: no .cmt/.cmti files under %s (build first: dune build)\n%!" build_dir;
        2
      end
      else begin
        let findings = Engine.findings t in
        (match json_out with
        | Some path ->
            let oc = open_out path in
            output_string oc (Finding.list_to_json findings);
            output_char oc '\n';
            close_out oc
        | None -> ());
        (match exn_report_out with
        | Some path ->
            let oc = open_out path in
            output_string oc (exn_report_json (Engine.exn_report t));
            output_char oc '\n';
            close_out oc
        | None -> ());
        (match if json then `Json else format with
        | `Json -> print_endline (Finding.list_to_json findings)
        | `Sarif -> print_endline (Finding.list_to_sarif findings)
        | `Text -> List.iter (fun f -> print_endline (Finding.to_string f)) findings);
        if verbose then begin
          Printf.eprintf "ntcheck: reachable from roots: %s\n%!"
            (String.concat ", " (Engine.reachable t));
          Printf.eprintf "ntcheck: merge coverage required for: %s\n%!"
            (String.concat ", " (Engine.merge_required t));
          Printf.eprintf "ntcheck: merge coverage registered for: %s\n%!"
            (String.concat ", " (Engine.merge_covered t));
          Printf.eprintf "ntcheck: suppressions by rule: %s\n%!"
            (match Engine.allowed_by_rule t with
            | [] -> "(none)"
            | l ->
                String.concat ", "
                  (List.map (fun (id, n) -> Printf.sprintf "%s=%d" id n) l));
          List.iter
            (fun (display, _file, _line, exns) ->
              Printf.eprintf "ntcheck: may-raise %s: {%s}\n%!" display
                (String.concat ", " exns))
            (List.filter (fun (_, _, _, exns) -> exns <> []) (Engine.exn_report t))
        end;
        List.iter
          (fun (path, err) -> Printf.eprintf "ntcheck: unreadable %s: %s\n%!" path err)
          (Engine.load_errors t);
        Printf.eprintf
          "ntcheck: %d units, %d error(s), %d warning(s), %d info, %d allowed by attribute%s\n%!"
          (Engine.units_scanned t)
          (Engine.severity_count t Rule.Error)
          (Engine.severity_count t Rule.Warn)
          (Engine.severity_count t Rule.Info)
          (Engine.allowed t)
          (if Engine.overflow t > 0 then
             Printf.sprintf " (%d findings dropped past per-rule cap)" (Engine.overflow t)
           else "");
        let failed =
          match fail_on with
          | `Never -> false
          | `Error -> Engine.severity_count t Rule.Error > 0
          | `Warn ->
              Engine.severity_count t Rule.Error > 0 || Engine.severity_count t Rule.Warn > 0
        in
        if failed then 1 else 0
      end
    end

let build_dir =
  Arg.(
    value & pos 0 string "_build/default"
    & info [] ~docv:"BUILD_DIR" ~doc:"Dune build directory holding the .cmt files.")

let format =
  Arg.(
    value
    & opt (enum [ ("text", `Text); ("json", `Json); ("sarif", `Sarif) ]) `Text
    & info [ "format" ] ~docv:"FORMAT"
        ~doc:"Findings output format: text (default), json, or sarif (SARIF 2.1.0).")

let json =
  Arg.(
    value & flag
    & info [ "json" ] ~doc:"Emit findings as a JSON array on stdout (same as --format json).")

let exn_report_out =
  Arg.(
    value
    & opt (some string) None
    & info [ "exn-report" ] ~docv:"PATH"
        ~doc:
          "Write the per-function may-raise report (every binding reachable from an \
           exn-escape root) as JSON to $(docv).")

let json_out =
  Arg.(
    value
    & opt (some string) None
    & info [ "json-out" ] ~docv:"PATH"
        ~doc:"Also write the JSON findings array to $(docv) (CI artifact).")

let fail_on =
  Arg.(
    value
    & opt (enum [ ("never", `Never); ("warn", `Warn); ("error", `Error) ]) `Error
    & info [ "fail-on" ] ~docv:"LEVEL"
        ~doc:"Exit non-zero when findings reach $(docv): never, warn, or error.")

let enabled_only =
  Arg.(
    value
    & opt (some (list string)) None
    & info [ "enable" ] ~docv:"RULES" ~doc:"Run only these comma-separated rule ids.")

let disabled =
  Arg.(
    value & opt (list string) []
    & info [ "disable" ] ~docv:"RULES" ~doc:"Skip these comma-separated rule ids.")

let roots =
  Arg.(
    value & opt (list string) []
    & info [ "root" ] ~docv:"UNITS"
        ~doc:
          "Override the domain-safety reachability roots (comma-separated compilation \
           units; default Nt_par__Passes, Nt_par__Driver).")

let excludes =
  Arg.(
    value & opt (list string) []
    & info [ "exclude" ] ~docv:"SUBSTRINGS"
        ~doc:"Skip paths containing any of these substrings (check_fixtures is always skipped).")

let max_per_rule =
  Arg.(
    value
    & opt int Engine.default_config.Engine.max_per_rule
    & info [ "max-per-rule" ] ~docv:"N" ~doc:"Cap findings per rule; excess is counted, not listed.")

let verbose =
  Arg.(
    value & flag
    & info [ "verbose" ]
        ~doc:"Print the reachable-module set and merge-coverage requirements to stderr.")

let cmd =
  Cmd.v
    (Cmd.info "ntcheck"
       ~doc:"Statically check compiled typedtrees for domain-safety, merge-law and purity invariants")
    Term.(
      const run $ build_dir $ format $ json $ json_out $ exn_report_out $ fail_on
      $ enabled_only $ disabled $ roots $ excludes $ max_per_rule $ verbose $ Rules_cli.term)

let () = exit (Cmd.eval' cmd)
