(** Online filename-hint learning (paper §6.3 / §7).

    The paper closes by asking "how much data and computation are
    necessary for a general purpose file system to derive and take
    advantage of the strong correlation between filenames and file size
    or lifespan". This module answers the measurement half: a causal,
    online learner that sees the trace exactly as a file server would.

    At every CREATE it predicts the new file's size class, lifetime
    class and access pattern from what it has learned {e so far} about
    that name category; when the ground truth becomes observable (the
    file is deleted, or its final size settles), the prediction is
    scored and the model updated. Unlike {!Names.predict}, there is no
    train/test split: the model never peeks at the future. *)

type size_class = Tiny  (** <= 8 KB *) | Small  (** <= 64 KB *) | Medium  (** <= 1 MB *) | Large

type lifetime_class =
  | Subsecond  (** <= 1 s *)
  | Transient  (** <= 60 s *)
  | Session  (** <= 1 h *)
  | Durable

val size_class_of : float -> size_class
val lifetime_class_of : float -> lifetime_class

type t

val create : unit -> t
val observe : t -> Nt_trace.Record.t -> unit

type score = {
  predictions : int;  (** creates for which the model ventured a prediction *)
  size_scored : int;  (** size predictions with observable ground truth *)
  size_correct : int;
  lifetime_scored : int;  (** predictions whose file was deleted in-trace *)
  lifetime_correct : int;
  cold_creates : int;  (** creates with no history for the category yet *)
  model_categories : int;  (** distinct categories with learned state *)
}

val score : t -> score

val size_accuracy : score -> float
(** Fraction of size predictions that were right; nan if none. *)

val lifetime_accuracy : score -> float

val footprint : t -> Nt_obs.Footprint.t
(** State-footprint accounting (see {!Nt_obs.Footprint}): tracked
    entries and an approximate heap-words estimate. *)
