lib/nfs/v2.ml: Fh Int64 List Nt_xdr Ops Option Printf Proc String Types
