lib/workload/email.mli: Nt_sim Nt_trace
