module Ops = Nt_nfs.Ops
module Proc = Nt_nfs.Proc
module Types = Nt_nfs.Types
module Fh = Nt_nfs.Fh
module Ip_addr = Nt_net.Ip_addr

type t = {
  time : float;
  reply_time : float option;
  client : Ip_addr.t;
  server : Ip_addr.t;
  version : int;
  xid : int;
  uid : int;
  gid : int;
  call : Ops.call;
  result : Ops.result option;
}

let proc t = Ops.proc_of_call t.call
let fh t = Ops.call_fh t.call
let name t = Ops.call_name t.call

let target_fh t =
  match t.result with
  | Some (Ok (Ops.R_lookup { fh; _ })) -> Some fh
  | Some (Ok (Ops.R_create { fh = Some fh; _ })) -> Some fh
  | _ -> fh t

let offset t =
  match t.call with
  | Read { offset; _ } | Write { offset; _ } | Commit { offset; _ } -> Some offset
  | _ -> None

let count t =
  match t.call with
  | Read { count; _ } | Write { count; _ } | Commit { count; _ } -> Some count
  | _ -> None

let io_bytes t =
  match t.call with
  | Read { count; _ } -> (
      match t.result with
      | Some (Ok (Ops.R_read { count = rc; _ })) -> rc
      | Some (Error _) -> 0
      | _ -> count)
  | Write { count; _ } -> (
      match t.result with
      | Some (Ok (Ops.R_write { count = rc; _ })) when rc > 0 -> rc
      | Some (Error _) -> 0
      | _ -> count)
  | _ -> 0

let post_fattr t =
  match t.result with
  | Some (Ok (Ops.R_attr a)) -> Some a
  | Some (Ok (Ops.R_lookup { obj = Some a; _ })) -> Some a
  | Some (Ok (Ops.R_read { attr = Some a; _ })) -> Some a
  | Some (Ok (Ops.R_write { attr = Some a; _ })) -> Some a
  | Some (Ok (Ops.R_create { attr = Some a; _ })) -> Some a
  | _ -> None

let post_size t = match post_fattr t with Some a -> Some a.size | None -> None

let status t =
  match t.result with
  | None -> None
  | Some (Ok _) -> Some Types.Ok_
  | Some (Error st) -> Some st

let is_ok t = match t.result with Some (Ok _) -> true | _ -> false

(* --- text serialization --- *)

let escape s =
  let needs c =
    match c with ' ' | '%' | '|' | '=' | '\n' | '\t' | '\r' -> true | c -> Char.code c < 32
  in
  if String.exists needs s then begin
    let buf = Buffer.create (String.length s + 8) in
    String.iter
      (fun c -> if needs c then Buffer.add_string buf (Printf.sprintf "%%%02x" (Char.code c)) else Buffer.add_char buf c)
      s;
    Buffer.contents buf
  end
  else s

let unescape s =
  if not (String.contains s '%') then s
  else begin
    let buf = Buffer.create (String.length s) in
    let n = String.length s in
    let i = ref 0 in
    while !i < n do
      if s.[!i] = '%' && !i + 2 < n then begin
        (match int_of_string_opt ("0x" ^ String.sub s (!i + 1) 2) with
        | Some code -> Buffer.add_char buf (Char.chr code)
        | None -> Buffer.add_char buf s.[!i]);
        i := !i + 3
      end
      else begin
        Buffer.add_char buf s.[!i];
        i := !i + 1
      end
    done;
    Buffer.contents buf
  end

let kv key value = Printf.sprintf "%s=%s" key value
let kv_fh key fh = kv key (Fh.to_hex_full fh)
let kv_str key s = kv key (escape s)

let call_fields (c : Ops.call) =
  match c with
  | Null -> []
  | Getattr fh | Readlink fh | Statfs fh | Fsinfo fh | Pathconf fh -> [ kv_fh "fh" fh ]
  | Setattr { fh; attrs } ->
      let base = [ kv_fh "fh" fh ] in
      let opt key f = function Some v -> [ kv key (f v) ] | None -> [] in
      base
      @ opt "ssize" Int64.to_string attrs.set_size
      @ opt "smode" string_of_int attrs.set_mode
      @ opt "suid" string_of_int attrs.set_uid
      @ opt "sgid" string_of_int attrs.set_gid
      @ opt "satime" (fun t -> string_of_float (Types.time_to_float t)) attrs.set_atime
      @ opt "smtime" (fun t -> string_of_float (Types.time_to_float t)) attrs.set_mtime
  | Lookup { dir; name } -> [ kv_fh "dir" dir; kv_str "name" name ]
  | Access { fh; access } -> [ kv_fh "fh" fh; kv "acc" (string_of_int access) ]
  | Read { fh; offset; count } ->
      [ kv_fh "fh" fh; kv "off" (Int64.to_string offset); kv "count" (string_of_int count) ]
  | Write { fh; offset; count; stable } ->
      [
        kv_fh "fh" fh;
        kv "off" (Int64.to_string offset);
        kv "count" (string_of_int count);
        kv "stable" (string_of_int (Types.stable_how_to_int stable));
      ]
  | Create { dir; name; mode; exclusive } ->
      [ kv_fh "dir" dir; kv_str "name" name; kv "mode" (string_of_int mode);
        kv "excl" (if exclusive then "1" else "0") ]
  | Mkdir { dir; name; mode } ->
      [ kv_fh "dir" dir; kv_str "name" name; kv "mode" (string_of_int mode) ]
  | Symlink { dir; name; target } ->
      [ kv_fh "dir" dir; kv_str "name" name; kv_str "target" target ]
  | Mknod { dir; name } | Remove { dir; name } | Rmdir { dir; name } ->
      [ kv_fh "dir" dir; kv_str "name" name ]
  | Rename { from_dir; from_name; to_dir; to_name } ->
      [ kv_fh "dir" from_dir; kv_str "name" from_name; kv_fh "todir" to_dir;
        kv_str "toname" to_name ]
  | Link { fh; to_dir; to_name } ->
      [ kv_fh "fh" fh; kv_fh "todir" to_dir; kv_str "toname" to_name ]
  | Readdir { dir; cookie; count } | Readdirplus { dir; cookie; count } ->
      [ kv_fh "dir" dir; kv "cookie" (Int64.to_string cookie); kv "count" (string_of_int count) ]
  | Commit { fh; offset; count } ->
      [ kv_fh "fh" fh; kv "off" (Int64.to_string offset); kv "count" (string_of_int count) ]

let attr_fields (a : Types.fattr) =
  [
    kv "size" (Int64.to_string a.size);
    kv "fileid" (Int64.to_string a.fileid);
    kv "ftype" (Types.ftype_to_string a.ftype);
    kv "mtime" (string_of_float (Types.time_to_float a.mtime));
  ]

let opt_attr_fields = function None -> [] | Some a -> attr_fields a

let result_fields (r : Ops.result) =
  match r with
  | Error st -> [ kv "status" (string_of_int (Types.nfsstat_to_int st)) ]
  | Ok success -> (
      kv "status" "0"
      ::
      (match success with
      | R_null | R_empty -> []
      | R_attr a -> attr_fields a
      | R_lookup { fh; obj; _ } -> kv_fh "rfh" fh :: opt_attr_fields obj
      | R_access bits -> [ kv "racc" (string_of_int bits) ]
      | R_readlink target -> [ kv_str "rtarget" target ]
      | R_read { attr; count; eof } ->
          [ kv "rcount" (string_of_int count); kv "eof" (if eof then "1" else "0") ]
          @ opt_attr_fields attr
      | R_write { count; committed; attr } ->
          [ kv "rcount" (string_of_int count);
            kv "committed" (string_of_int (Types.stable_how_to_int committed)) ]
          @ opt_attr_fields attr
      | R_create { fh; attr } ->
          (match fh with Some fh -> [ kv_fh "rfh" fh ] | None -> []) @ opt_attr_fields attr
      | R_readdir { entries; eof } ->
          (* Entry lists can be huge and no analysis consumes them from
             saved traces; only the count survives serialization. *)
          [ kv "nentries" (string_of_int (List.length entries)); kv "eof" (if eof then "1" else "0") ]
      | R_statfs { total_bytes; free_bytes } ->
          [ kv "tbytes" (Int64.to_string total_bytes); kv "fbytes" (Int64.to_string free_bytes) ]
      | R_fsinfo { rtmax; wtmax } ->
          [ kv "rtmax" (string_of_int rtmax); kv "wtmax" (string_of_int wtmax) ]
      | R_pathconf { name_max } -> [ kv "namemax" (string_of_int name_max) ]))

let to_line t =
  let base =
    [
      Printf.sprintf "%.6f" t.time;
      (match t.reply_time with Some rt -> Printf.sprintf "%.6f" rt | None -> "-");
      Printf.sprintf "v%d" t.version;
      Ip_addr.to_string t.client;
      Ip_addr.to_string t.server;
      Printf.sprintf "%08x" t.xid;
      string_of_int t.uid;
      string_of_int t.gid;
      Proc.to_string (proc t);
    ]
  in
  let call = call_fields t.call in
  let result = match t.result with None -> [] | Some r -> "|" :: result_fields r in
  String.concat " " (base @ call @ result)

(* --- parsing --- *)

let proc_of_string s = List.find_opt (fun p -> Proc.to_string p = s) Proc.all

let parse_kvs tokens =
  List.filter_map
    (fun tok ->
      match String.index_opt tok '=' with
      | Some i -> Some (String.sub tok 0 i, String.sub tok (i + 1) (String.length tok - i - 1))
      | None -> None)
    tokens

let of_line line =
  let ( let* ) = Result.bind in
  let fail fmt = Printf.ksprintf (fun m -> Error m) fmt in
  match String.split_on_char ' ' line with
  | time :: reply_time :: version :: client :: server :: xid :: uid :: gid :: procname :: rest ->
      let* time = match float_of_string_opt time with Some f -> Ok f | None -> fail "bad time" in
      let* reply_time =
        if reply_time = "-" then Ok None
        else
          match float_of_string_opt reply_time with
          | Some f -> Ok (Some f)
          | None -> fail "bad reply time"
      in
      let* version =
        match version with "v2" -> Ok 2 | "v3" -> Ok 3 | v -> fail "bad version %s" v
      in
      let* client =
        match Ip_addr.of_string client with Some ip -> Ok ip | None -> fail "bad client ip"
      in
      let* server =
        match Ip_addr.of_string server with Some ip -> Ok ip | None -> fail "bad server ip"
      in
      let* xid =
        match int_of_string_opt ("0x" ^ xid) with Some x -> Ok x | None -> fail "bad xid"
      in
      let* uid = match int_of_string_opt uid with Some u -> Ok u | None -> fail "bad uid" in
      let* gid = match int_of_string_opt gid with Some g -> Ok g | None -> fail "bad gid" in
      let* p = match proc_of_string procname with Some p -> Ok p | None -> fail "bad proc" in
      let call_toks, result_toks =
        let rec split acc = function
          | [] -> (List.rev acc, None)
          | "|" :: rest -> (List.rev acc, Some rest)
          | tok :: rest -> split (tok :: acc) rest
        in
        split [] rest
      in
      let ckv = parse_kvs call_toks in
      let get key = List.assoc_opt key ckv in
      let get_fh key =
        match get key with Some hex -> Fh.of_hex hex | None -> None
      in
      let get_int key = Option.bind (get key) int_of_string_opt in
      let get_i64 key = Option.bind (get key) Int64.of_string_opt in
      let get_name key = Option.map unescape (get key) in
      let req_fh key = match get_fh key with Some fh -> Ok fh | None -> fail "missing %s" key in
      let req_name key =
        match get_name key with Some n -> Ok n | None -> fail "missing %s" key
      in
      let req_i64 key = match get_i64 key with Some v -> Ok v | None -> fail "missing %s" key in
      let req_int key = match get_int key with Some v -> Ok v | None -> fail "missing %s" key in
      let* call =
        match (p : Proc.t) with
        | Null | Root | Writecache -> Ok Ops.Null
        | Getattr ->
            let* fh = req_fh "fh" in
            Ok (Ops.Getattr fh)
        | Readlink ->
            let* fh = req_fh "fh" in
            Ok (Ops.Readlink fh)
        | Statfs ->
            let* fh = req_fh "fh" in
            Ok (Ops.Statfs fh)
        | Fsinfo ->
            let* fh = req_fh "fh" in
            Ok (Ops.Fsinfo fh)
        | Pathconf ->
            let* fh = req_fh "fh" in
            Ok (Ops.Pathconf fh)
        | Setattr ->
            let* fh = req_fh "fh" in
            let time_of key =
              Option.map (fun f -> Types.time_of_float f)
                (Option.bind (get key) float_of_string_opt)
            in
            Ok
              (Ops.Setattr
                 {
                   fh;
                   attrs =
                     {
                       set_size = get_i64 "ssize";
                       set_mode = get_int "smode";
                       set_uid = get_int "suid";
                       set_gid = get_int "sgid";
                       set_atime = time_of "satime";
                       set_mtime = time_of "smtime";
                     };
                 })
        | Lookup ->
            let* dir = req_fh "dir" in
            let* name = req_name "name" in
            Ok (Ops.Lookup { dir; name })
        | Access ->
            let* fh = req_fh "fh" in
            let* access = req_int "acc" in
            Ok (Ops.Access { fh; access })
        | Read ->
            let* fh = req_fh "fh" in
            let* offset = req_i64 "off" in
            let* count = req_int "count" in
            Ok (Ops.Read { fh; offset; count })
        | Write ->
            let* fh = req_fh "fh" in
            let* offset = req_i64 "off" in
            let* count = req_int "count" in
            let stable = Types.stable_how_of_int (Option.value (get_int "stable") ~default:2) in
            Ok (Ops.Write { fh; offset; count; stable })
        | Create ->
            let* dir = req_fh "dir" in
            let* name = req_name "name" in
            let mode = Option.value (get_int "mode") ~default:0o644 in
            let exclusive = get "excl" = Some "1" in
            Ok (Ops.Create { dir; name; mode; exclusive })
        | Mkdir ->
            let* dir = req_fh "dir" in
            let* name = req_name "name" in
            let mode = Option.value (get_int "mode") ~default:0o755 in
            Ok (Ops.Mkdir { dir; name; mode })
        | Symlink ->
            let* dir = req_fh "dir" in
            let* name = req_name "name" in
            let* target = req_name "target" in
            Ok (Ops.Symlink { dir; name; target })
        | Mknod ->
            let* dir = req_fh "dir" in
            let* name = req_name "name" in
            Ok (Ops.Mknod { dir; name })
        | Remove ->
            let* dir = req_fh "dir" in
            let* name = req_name "name" in
            Ok (Ops.Remove { dir; name })
        | Rmdir ->
            let* dir = req_fh "dir" in
            let* name = req_name "name" in
            Ok (Ops.Rmdir { dir; name })
        | Rename ->
            let* from_dir = req_fh "dir" in
            let* from_name = req_name "name" in
            let* to_dir = req_fh "todir" in
            let* to_name = req_name "toname" in
            Ok (Ops.Rename { from_dir; from_name; to_dir; to_name })
        | Link ->
            let* fh = req_fh "fh" in
            let* to_dir = req_fh "todir" in
            let* to_name = req_name "toname" in
            Ok (Ops.Link { fh; to_dir; to_name })
        | Readdir ->
            let* dir = req_fh "dir" in
            let* cookie = req_i64 "cookie" in
            let* count = req_int "count" in
            Ok (Ops.Readdir { dir; cookie; count })
        | Readdirplus ->
            let* dir = req_fh "dir" in
            let* cookie = req_i64 "cookie" in
            let* count = req_int "count" in
            Ok (Ops.Readdirplus { dir; cookie; count })
        | Commit ->
            let* fh = req_fh "fh" in
            let* offset = req_i64 "off" in
            let* count = req_int "count" in
            Ok (Ops.Commit { fh; offset; count })
      in
      let result =
        match result_toks with
        | None -> None
        | Some toks -> (
            let rkv = parse_kvs toks in
            let rget key = List.assoc_opt key rkv in
            let rint key = Option.bind (rget key) int_of_string_opt in
            let ri64 key = Option.bind (rget key) Int64.of_string_opt in
            match rint "status" with
            | None -> None
            | Some 0 -> (
                let attr =
                  match (ri64 "size", ri64 "fileid") with
                  | Some size, fileid ->
                      let ftype =
                        match rget "ftype" with
                        | Some "DIR" -> Types.Dir
                        | Some "LNK" -> Types.Lnk
                        | _ -> Types.Reg
                      in
                      let mtime =
                        Types.time_of_float
                          (Option.value
                             (Option.bind (rget "mtime") float_of_string_opt)
                             ~default:0.)
                      in
                      Some
                        {
                          Types.default_fattr with
                          size;
                          fileid = Option.value fileid ~default:0L;
                          ftype;
                          mtime;
                        }
                  | None, _ -> None
                in
                match (p : Proc.t) with
                | Null | Root | Writecache -> Some (Stdlib.Ok Ops.R_null)
                | Getattr | Setattr -> (
                    match attr with
                    | Some a -> Some (Stdlib.Ok (Ops.R_attr a))
                    | None -> Some (Stdlib.Ok Ops.R_empty))
                | Lookup -> (
                    match Option.bind (rget "rfh") Fh.of_hex with
                    | Some fh -> Some (Stdlib.Ok (Ops.R_lookup { fh; obj = attr; dir = None }))
                    | None -> Some (Stdlib.Ok Ops.R_empty))
                | Access ->
                    Some (Stdlib.Ok (Ops.R_access (Option.value (rint "racc") ~default:0)))
                | Readlink ->
                    Some
                      (Stdlib.Ok
                         (Ops.R_readlink (unescape (Option.value (rget "rtarget") ~default:""))))
                | Read ->
                    Some
                      (Stdlib.Ok
                         (Ops.R_read
                            {
                              attr;
                              count = Option.value (rint "rcount") ~default:0;
                              eof = rget "eof" = Some "1";
                            }))
                | Write ->
                    Some
                      (Stdlib.Ok
                         (Ops.R_write
                            {
                              count = Option.value (rint "rcount") ~default:0;
                              committed =
                                Types.stable_how_of_int
                                  (Option.value (rint "committed") ~default:2);
                              attr;
                            }))
                | Create | Mkdir | Symlink | Mknod ->
                    Some
                      (Stdlib.Ok
                         (Ops.R_create { fh = Option.bind (rget "rfh") Fh.of_hex; attr }))
                | Remove | Rmdir | Rename | Link | Commit -> Some (Stdlib.Ok Ops.R_empty)
                | Readdir | Readdirplus ->
                    Some (Stdlib.Ok (Ops.R_readdir { entries = []; eof = rget "eof" = Some "1" }))
                | Statfs ->
                    Some
                      (Stdlib.Ok
                         (Ops.R_statfs
                            {
                              total_bytes = Option.value (ri64 "tbytes") ~default:0L;
                              free_bytes = Option.value (ri64 "fbytes") ~default:0L;
                            }))
                | Fsinfo ->
                    Some
                      (Stdlib.Ok
                         (Ops.R_fsinfo
                            {
                              rtmax = Option.value (rint "rtmax") ~default:32768;
                              wtmax = Option.value (rint "wtmax") ~default:32768;
                            }))
                | Pathconf ->
                    Some
                      (Stdlib.Ok
                         (Ops.R_pathconf { name_max = Option.value (rint "namemax") ~default:255 })))
            | Some code -> Some (Stdlib.Error (Types.nfsstat_of_int code)))
      in
      Ok { time; reply_time; version; client; server; xid; uid; gid; call; result }
  | _ -> Error "too few fields"

let write_channel oc records =
  let n = ref 0 in
  Seq.iter
    (fun r ->
      output_string oc (to_line r);
      output_char oc '\n';
      incr n)
    records;
  !n

let read_channel ic =
  let rec next () =
    match input_line ic with
    | exception End_of_file -> Seq.Nil
    | line -> (
        match of_line line with Ok r -> Seq.Cons (r, next) | Error _ -> next ())
  in
  next
