(* Hashtbl plus an insertion-order queue of (seq, key). A queue entry
   is authoritative only while the table still holds the same seq for
   that key; stale entries (removed or re-inserted keys) are skipped
   when popped. The queue is compacted whenever it grows past twice the
   live size, so total memory stays proportional to the live bindings
   regardless of how much churn the stream produces. *)

type ('k, 'v) t = {
  capacity : int;
  tbl : ('k, int * 'v) Hashtbl.t;
  order : (int * 'k) Queue.t;
  mutable seq : int;
  mutable evictions : int;
}

let create ~capacity =
  {
    capacity = max 1 capacity;
    tbl = Hashtbl.create 256;
    order = Queue.create ();
    seq = 0;
    evictions = 0;
  }

let length t = Hashtbl.length t.tbl

let valid t (seq, key) =
  match Hashtbl.find_opt t.tbl key with Some (s, _) -> s = seq | None -> false

let rec evict_one t =
  match Queue.take_opt t.order with
  | None -> ()
  | Some ((_, key) as entry) ->
      if valid t entry then begin
        Hashtbl.remove t.tbl key;
        t.evictions <- t.evictions + 1
      end
      else evict_one t

let compact t =
  while Queue.length t.order > (2 * Hashtbl.length t.tbl) + 16 do
    match Queue.take_opt t.order with
    | None -> ()
    | Some entry ->
        (* A live entry rotates to the back so compaction always makes
           progress; eviction order degrades gracefully from FIFO. *)
        if valid t entry then Queue.add entry t.order
  done

let set t key value =
  match Hashtbl.find_opt t.tbl key with
  | Some (seq, _) ->
      (* Replacement keeps the original seq so the existing queue entry
         stays authoritative and insertion order is not refreshed. *)
      Hashtbl.replace t.tbl key (seq, value)
  | None ->
      t.seq <- t.seq + 1;
      Hashtbl.replace t.tbl key (t.seq, value);
      Queue.add (t.seq, key) t.order;
      if Hashtbl.length t.tbl > t.capacity then evict_one t;
      compact t

let find t key = Option.map snd (Hashtbl.find_opt t.tbl key)
let evictions t = t.evictions
let mem t key = Hashtbl.mem t.tbl key
let remove t key = Hashtbl.remove t.tbl key
