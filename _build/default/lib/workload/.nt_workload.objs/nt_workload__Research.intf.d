lib/workload/research.mli: Nt_sim Nt_trace
