lib/util/prng.mli:
