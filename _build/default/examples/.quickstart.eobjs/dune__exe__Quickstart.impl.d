examples/quickstart.ml: Hashtbl List Nt_core Nt_nfs Nt_trace Nt_util Nt_workload Option Printf
