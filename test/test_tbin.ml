(* nttb/1 codec battery: qcheck round-trips over the full Record.t
   constructor space, frame-split robustness down to one-byte feeds, a
   seeded corruption storm with exactly-one-counter accounting, the
   byte-exact golden wire lock, and the text/pcap/tbin/streaming
   analysis differential. *)

module T = Nt_nfs.Types
module Ops = Nt_nfs.Ops
module Fh = Nt_nfs.Fh
module Ip = Nt_net.Ip_addr
module Record = Nt_trace.Record
module Tbin = Nt_tbin
module V = Nt_tbin.Varint
module Frame = Nt_tbin.Frame
module G = QCheck.Gen

(* ---------- record builders ---------- *)

let time0 = 1_048_000_000.

let mk ?(time = time0) ?reply_time ?(client = Ip.v 10 1 2 3) ?(server = Ip.v 10 9 9 9)
    ?(version = 3) ?(xid = 0xdeadbe) ?(uid = 1000) ?(gid = 100) ?result call =
  { Record.time; reply_time; client; server; version; xid; uid; gid; call; result }

let fh_bytes n seed = Fh.of_raw (String.init n (fun i -> Char.chr ((i * 131 + seed) land 0xff)))
let fh0 = Fh.of_raw ""
let fh64 = fh_bytes 64 5
let fh_a = Fh.make ~fsid:3 ~fileid:42
let fh_b = Fh.make ~fsid:3 ~fileid:43
let t1 = { T.seconds = 1_048_000_123; nanos = 999_999_999 }

let fattr1 =
  {
    T.default_fattr with
    T.ftype = T.Dir;
    mode = 0o755;
    nlink = 3;
    size = 123_456_789_012L;
    used = 4096L;
    fsid = 7L;
    fileid = 424_242L;
    atime = t1;
    mtime = { t1 with T.nanos = 0 };
    ctime = t1;
  }

let fattr_extreme =
  {
    T.ftype = T.Fifo;
    mode = max_int;
    nlink = min_int;
    uid = -1;
    gid = max_int;
    size = Int64.max_int;
    used = Int64.min_int;
    fsid = -1L;
    fileid = 0L;
    atime = { T.seconds = min_int; nanos = max_int };
    mtime = { T.seconds = 0; nanos = 0 };
    ctime = { T.seconds = -1; nanos = -1 };
  }

let sattr_full =
  {
    T.set_mode = Some 0o600;
    set_uid = Some 0;
    set_gid = Some (-1);
    set_size = Some Int64.max_int;
    set_atime = Some t1;
    set_mtime = Some { T.seconds = 1; nanos = 2 };
  }

let huge_name = String.make 5000 'n'

(* One record per call constructor, one per success constructor, plus
   the value extremes (empty and 64-byte handles, empty and huge names,
   int/int64 boundaries, missing replies, error replies, v2 records).
   This list is the golden fixture input, so it must stay deterministic
   — extend it only together with the goldens. *)
let menagerie () =
  let entries n =
    List.init n (fun i ->
        {
          Ops.entry_fileid = Int64.of_int (i * 7);
          entry_name = Printf.sprintf "e%04d" i;
          entry_cookie = Int64.of_int (i + 1);
        })
  in
  [
    mk Ops.Null ~result:(Ok Ops.R_null) ~reply_time:(time0 +. 0.001);
    mk (Ops.Getattr fh_a) ~result:(Ok (Ops.R_attr fattr1));
    mk (Ops.Setattr { fh = fh_a; attrs = sattr_full }) ~result:(Ok (Ops.R_attr fattr_extreme));
    mk (Ops.Setattr { fh = fh0; attrs = T.empty_sattr });
    mk
      (Ops.Lookup { dir = fh_a; name = "mbox" })
      ~result:(Ok (Ops.R_lookup { fh = fh_b; obj = Some fattr1; dir = None }));
    mk (Ops.Lookup { dir = fh64; name = "" }) ~result:(Error T.Err_noent);
    mk (Ops.Lookup { dir = fh_a; name = huge_name }) ~result:(Error (T.Err_unknown 31337));
    mk (Ops.Access { fh = fh_a; access = 0x3f }) ~result:(Ok (Ops.R_access 0x1f));
    mk (Ops.Readlink fh_b) ~result:(Ok (Ops.R_readlink "../target/elsewhere"));
    mk
      (Ops.Read { fh = fh_a; offset = 0L; count = 8192 })
      ~result:(Ok (Ops.R_read { attr = Some fattr1; count = 8192; eof = false }));
    mk
      (Ops.Read { fh = fh_a; offset = Int64.max_int; count = max_int })
      ~result:(Ok (Ops.R_read { attr = None; count = 0; eof = true }));
    mk
      (Ops.Write { fh = fh_a; offset = 65536L; count = 4096; stable = T.Unstable })
      ~result:(Ok (Ops.R_write { count = 4096; committed = T.File_sync; attr = Some fattr1 }));
    mk (Ops.Write { fh = fh_b; offset = -1L; count = 0; stable = T.Data_sync }) ~version:2;
    mk
      (Ops.Create { dir = fh_a; name = "#comp1#"; mode = 0o644; exclusive = true })
      ~result:(Ok (Ops.R_create { fh = Some fh_b; attr = Some fattr1 }));
    mk
      (Ops.Create { dir = fh_a; name = "x"; mode = 0; exclusive = false })
      ~result:(Ok (Ops.R_create { fh = None; attr = None }));
    mk
      (Ops.Mkdir { dir = fh_a; name = "dir"; mode = 0o700 })
      ~result:(Ok (Ops.R_create { fh = Some fh_a; attr = None }));
    mk (Ops.Symlink { dir = fh_a; name = "ln"; target = "/very/long/target" })
      ~result:(Ok Ops.R_empty);
    mk (Ops.Mknod { dir = fh_a; name = "dev" }) ~result:(Error T.Err_notsupp);
    mk (Ops.Remove { dir = fh_a; name = "user1.lock" }) ~result:(Ok Ops.R_empty);
    mk (Ops.Rmdir { dir = fh_a; name = "dir" }) ~result:(Error T.Err_notempty);
    mk (Ops.Rename { from_dir = fh_a; from_name = "a"; to_dir = fh_b; to_name = "b" })
      ~result:(Ok Ops.R_empty);
    mk (Ops.Link { fh = fh_b; to_dir = fh_a; to_name = "hard" }) ~result:(Ok Ops.R_empty);
    mk
      (Ops.Readdir { dir = fh_a; cookie = 0L; count = 4096 })
      ~result:(Ok (Ops.R_readdir { entries = entries 3; eof = true }));
    mk
      (Ops.Readdirplus { dir = fh_a; cookie = Int64.min_int; count = 8192 })
      ~result:(Ok (Ops.R_readdir { entries = entries 1000; eof = false }));
    mk (Ops.Statfs fh_a)
      ~result:(Ok (Ops.R_statfs { total_bytes = Int64.max_int; free_bytes = 0L }));
    mk (Ops.Fsinfo fh_a) ~result:(Ok (Ops.R_fsinfo { rtmax = 32768; wtmax = 32768 }));
    mk (Ops.Pathconf fh_a) ~result:(Ok (Ops.R_pathconf { name_max = 255 }));
    mk (Ops.Commit { fh = fh_a; offset = 0L; count = 0 }) ~result:(Ok Ops.R_empty);
    mk Ops.Null ~time:0. ~xid:min_int ~uid:(-1) ~gid:max_int ~version:2;
    mk (Ops.Getattr fh0) ~time:(-1.5) ~reply_time:infinity
      ~result:(Ok (Ops.R_attr T.default_fattr));
  ]

(* Deterministic plain records for the corruption battery: varied
   enough to exercise atoms and deltas, small enough that a damaged
   frame costs exactly one [frame_records] slice of them. *)
let simple i =
  let fh = Fh.make ~fsid:(i land 3) ~fileid:(1000 + (i land 31)) in
  mk
    ~time:(time0 +. (0.01 *. float_of_int i))
    ~reply_time:(time0 +. 0.005 +. (0.01 *. float_of_int i))
    ~xid:(i * 7919) ~uid:(i land 15) ~gid:2
    (Ops.Read { fh; offset = Int64.of_int (i * 8192); count = 8192 })
    ~result:(Ok (Ops.R_read { attr = None; count = 8192; eof = false }))

(* ---------- decode helpers ---------- *)

let drain d =
  let out = ref [] in
  let rec go () =
    match Tbin.Decoder.pull d with
    | Some r ->
        out := r :: !out;
        go ()
    | None -> ()
  in
  go ();
  List.rev !out

let decode_chunked chunk s =
  let d = Tbin.Decoder.create () in
  let n = String.length s in
  let pos = ref 0 in
  let out = ref [] in
  while !pos < n do
    let len = min chunk (n - !pos) in
    Tbin.Decoder.feed d (String.sub s !pos len);
    pos := !pos + len;
    out := !out @ drain d
  done;
  Tbin.Decoder.finish d;
  out := !out @ drain d;
  (Tbin.Decoder.stats d, !out)

let rec drop k l = if k = 0 then l else match l with [] -> [] | _ :: tl -> drop (k - 1) tl

let check_roundtrip ?frame_records msg rs =
  let st, out = Tbin.decode_string (Tbin.encode_string ?frame_records rs) in
  Alcotest.(check int) (msg ^ ": no failures") 0 (Tbin.failures st);
  Alcotest.(check int) (msg ^ ": record count") (List.length rs) (List.length out);
  if out <> rs then Alcotest.failf "%s: records changed across encode/decode" msg

(* ---------- varint ---------- *)

let test_varint_bounds () =
  let rt_uv v =
    let b = Buffer.create 16 in
    V.write_uv b v;
    let c = V.cursor (Buffer.contents b) in
    Alcotest.(check int) (Printf.sprintf "uv %d" v) v (V.read_uv c);
    Alcotest.(check int) "uv consumed all" (Buffer.length b) c.V.pos
  in
  let rt_zz v =
    let b = Buffer.create 16 in
    V.write_zz b v;
    Alcotest.(check int) (Printf.sprintf "zz %d" v) v (V.read_zz (V.cursor (Buffer.contents b)))
  in
  let rt_uv64 v =
    let b = Buffer.create 16 in
    V.write_uv64 b v;
    Alcotest.(check int64) (Printf.sprintf "uv64 %Ld" v) v
      (V.read_uv64 (V.cursor (Buffer.contents b)))
  in
  List.iter rt_uv [ 0; 1; 127; 128; 129; 16383; 16384; 0x7FFFFFFF; max_int; min_int; -1 ];
  List.iter rt_zz [ 0; 1; -1; 63; -64; 64; -65; 8191; -8192; max_int; min_int ];
  List.iter rt_uv64
    [ 0L; 1L; 127L; 128L; 16383L; 16384L; 0xFFFFFFFFL; Int64.max_int; Int64.min_int; -1L ]

let test_varint_corrupt () =
  Alcotest.check_raises "truncated uv" V.Corrupt (fun () ->
      ignore (V.read_uv (V.cursor "\x80")));
  Alcotest.check_raises "overlong uv" V.Corrupt (fun () ->
      ignore (V.read_uv (V.cursor "\x80\x80\x80\x80\x80\x80\x80\x80\x80\x01")));
  Alcotest.check_raises "overlong uv64" V.Corrupt (fun () ->
      ignore (V.read_uv64 (V.cursor "\x80\x80\x80\x80\x80\x80\x80\x80\x80\x80\x01")));
  Alcotest.check_raises "empty u8" V.Corrupt (fun () -> ignore (V.u8 (V.cursor "")))

(* ---------- frame services ---------- *)

let test_adler32 () =
  (* RFC 1950 reference value *)
  Alcotest.(check int) "adler32(Wikipedia)" 0x11E60398
    (Frame.adler32 "Wikipedia" ~pos:0 ~len:9);
  Alcotest.(check int) "adler32 empty" 1 (Frame.adler32 "" ~pos:0 ~len:0)

let rle_roundtrip s =
  let c = Frame.compress s in
  Frame.decompress c ~pos:0 ~len:(String.length c) ~expect:(String.length s) = s

let prop_rle_roundtrip =
  QCheck.Test.make ~name:"frame RLE round-trips arbitrary bytes" ~count:500
    QCheck.(string_of_size G.(0 -- 500))
    rle_roundtrip

let prop_rle_roundtrip_runs =
  QCheck.Test.make ~name:"frame RLE round-trips run-heavy bytes" ~count:300
    (QCheck.make (fun st ->
         let l = G.generate1 ~rand:st (G.list_size (G.int_range 0 20) (G.pair (G.int_range 0 300) G.char)) in
         String.concat "" (List.map (fun (n, c) -> String.make n c) l)))
    rle_roundtrip

let test_rle_rejects () =
  let c = Frame.compress (String.make 40 'a') in
  Alcotest.check_raises "wrong expected length" V.Corrupt (fun () ->
      ignore (Frame.decompress c ~pos:0 ~len:(String.length c) ~expect:41));
  Alcotest.check_raises "truncated control stream" V.Corrupt (fun () ->
      ignore (Frame.decompress "\x05ab" ~pos:0 ~len:3 ~expect:6))

(* ---------- qcheck record generators ---------- *)

let gen_name =
  G.oneof
    [
      G.return "";
      G.string_size ~gen:G.printable (G.int_range 1 40);
      G.map (fun n -> String.make n 'z') (G.int_range 1000 3000);
    ]

let gen_fh = G.map Fh.of_raw (G.string_size ~gen:G.char (G.int_range 0 64))

let gen_bint =
  G.oneof [ G.oneofl [ 0; 1; -1; 127; 128; 16383; 16384; max_int; min_int ]; G.int ]

let gen_nat = G.oneof [ G.oneofl [ 0; 1; 127; 128; 65535; max_int ]; G.small_nat ]

let gen_i64 =
  G.oneof
    [
      G.oneofl [ 0L; 1L; -1L; 127L; 128L; Int64.max_int; Int64.min_int ];
      G.map Int64.of_int G.int;
    ]

let gen_f =
  G.oneof
    [
      G.oneofl [ 0.; -0.; 1.; -1.; infinity; neg_infinity; 1e-300; 1.7976931348623157e308 ];
      G.map2
        (fun s us -> float_of_int s +. (float_of_int us /. 1e6))
        (G.int_range 0 2_000_000_000) (G.int_range 0 999_999);
    ]

let gen_time_t = G.map2 (fun s n -> { T.seconds = s; nanos = n }) gen_bint gen_nat
let gen_ftype = G.oneofl [ T.Reg; T.Dir; T.Blk; T.Chr; T.Lnk; T.Sock; T.Fifo ]
let gen_stable = G.oneofl [ T.Unstable; T.Data_sync; T.File_sync ]

let gen_fattr =
  G.map3
    (fun (ftype, mode, nlink, uid) (gid, size, used, fsid) (fileid, atime, mtime, ctime) ->
      { T.ftype; mode; nlink; uid; gid; size; used; fsid; fileid; atime; mtime; ctime })
    (G.quad gen_ftype gen_bint gen_bint gen_bint)
    (G.quad gen_bint gen_i64 gen_i64 gen_i64)
    (G.quad gen_i64 gen_time_t gen_time_t gen_time_t)

let gen_sattr =
  G.map2
    (fun (set_mode, set_uid, set_gid) (set_size, set_atime, set_mtime) ->
      { T.set_mode; set_uid; set_gid; set_size; set_atime; set_mtime })
    (G.triple (G.opt gen_bint) (G.opt gen_bint) (G.opt gen_bint))
    (G.triple (G.opt gen_i64) (G.opt gen_time_t) (G.opt gen_time_t))

let gen_entry =
  G.map3
    (fun entry_fileid entry_name entry_cookie -> { Ops.entry_fileid; entry_name; entry_cookie })
    gen_i64 gen_name gen_i64

let gen_call =
  G.oneof
    [
      G.return Ops.Null;
      G.map (fun fh -> Ops.Getattr fh) gen_fh;
      G.map2 (fun fh attrs -> Ops.Setattr { fh; attrs }) gen_fh gen_sattr;
      G.map2 (fun dir name -> Ops.Lookup { dir; name }) gen_fh gen_name;
      G.map2 (fun fh access -> Ops.Access { fh; access }) gen_fh gen_nat;
      G.map (fun fh -> Ops.Readlink fh) gen_fh;
      G.map3 (fun fh offset count -> Ops.Read { fh; offset; count }) gen_fh gen_i64 gen_nat;
      G.map
        (fun (fh, offset, count, stable) -> Ops.Write { fh; offset; count; stable })
        (G.quad gen_fh gen_i64 gen_nat gen_stable);
      G.map
        (fun (dir, name, mode, exclusive) -> Ops.Create { dir; name; mode; exclusive })
        (G.quad gen_fh gen_name gen_nat G.bool);
      G.map3 (fun dir name mode -> Ops.Mkdir { dir; name; mode }) gen_fh gen_name gen_nat;
      G.map3 (fun dir name target -> Ops.Symlink { dir; name; target }) gen_fh gen_name gen_name;
      G.map2 (fun dir name -> Ops.Mknod { dir; name }) gen_fh gen_name;
      G.map2 (fun dir name -> Ops.Remove { dir; name }) gen_fh gen_name;
      G.map2 (fun dir name -> Ops.Rmdir { dir; name }) gen_fh gen_name;
      G.map
        (fun (from_dir, from_name, to_dir, to_name) ->
          Ops.Rename { from_dir; from_name; to_dir; to_name })
        (G.quad gen_fh gen_name gen_fh gen_name);
      G.map3 (fun fh to_dir to_name -> Ops.Link { fh; to_dir; to_name }) gen_fh gen_fh gen_name;
      G.map3 (fun dir cookie count -> Ops.Readdir { dir; cookie; count }) gen_fh gen_i64 gen_nat;
      G.map3
        (fun dir cookie count -> Ops.Readdirplus { dir; cookie; count })
        gen_fh gen_i64 gen_nat;
      G.map (fun fh -> Ops.Statfs fh) gen_fh;
      G.map (fun fh -> Ops.Fsinfo fh) gen_fh;
      G.map (fun fh -> Ops.Pathconf fh) gen_fh;
      G.map3 (fun fh offset count -> Ops.Commit { fh; offset; count }) gen_fh gen_i64 gen_nat;
    ]

(* Statuses are generated through [nfsstat_of_int] so the value is
   always the canonical constructor for its wire code — the codec
   stores the code, so only canonical values can round-trip. *)
let gen_nfsstat = G.map T.nfsstat_of_int (G.oneof [ G.int_range 0 120; G.int_range 10000 10010 ])

let gen_success =
  G.oneof
    [
      G.return Ops.R_null;
      G.map (fun a -> Ops.R_attr a) gen_fattr;
      G.map3
        (fun fh obj dir -> Ops.R_lookup { fh; obj; dir })
        gen_fh (G.opt gen_fattr) (G.opt gen_fattr);
      G.map (fun a -> Ops.R_access a) gen_nat;
      G.map (fun s -> Ops.R_readlink s) gen_name;
      G.map3 (fun attr count eof -> Ops.R_read { attr; count; eof }) (G.opt gen_fattr) gen_nat
        G.bool;
      G.map3
        (fun count committed attr -> Ops.R_write { count; committed; attr })
        gen_nat gen_stable (G.opt gen_fattr);
      G.map2 (fun fh attr -> Ops.R_create { fh; attr }) (G.opt gen_fh) (G.opt gen_fattr);
      G.return Ops.R_empty;
      G.map2
        (fun entries eof -> Ops.R_readdir { entries; eof })
        (G.list_size (G.int_range 0 20) gen_entry)
        G.bool;
      G.map2
        (fun total_bytes free_bytes -> Ops.R_statfs { total_bytes; free_bytes })
        gen_i64 gen_i64;
      G.map2 (fun rtmax wtmax -> Ops.R_fsinfo { rtmax; wtmax }) gen_nat gen_nat;
      G.map (fun name_max -> Ops.R_pathconf { name_max }) gen_nat;
    ]

let gen_result =
  G.opt (G.oneof [ G.map (fun s -> Ok s) gen_success; G.map (fun e -> Error e) gen_nfsstat ])

let gen_record =
  G.map3
    (fun (time, reply_time, client, server) (version, xid, uid, gid) (call, result) ->
      { Record.time; reply_time; client; server; version; xid; uid; gid; call; result })
    (G.quad gen_f (G.opt gen_f) gen_bint gen_bint)
    (G.quad (G.oneofl [ 2; 3 ]) gen_bint gen_bint gen_bint)
    (G.pair gen_call gen_result)

let arb_record = QCheck.make ~print:Record.to_line gen_record

let arb_records =
  QCheck.make
    ~print:(fun rs -> String.concat "\n" (List.map Record.to_line rs))
    (G.list_size (G.int_range 0 40) gen_record)

(* ---------- round trips ---------- *)

let prop_roundtrip_one =
  QCheck.Test.make ~name:"decode (encode r) = r over the full record space" ~count:1000
    arb_record (fun r ->
      let st, out = Tbin.decode_string (Tbin.encode_string [ r ]) in
      Tbin.failures st = 0 && out = [ r ])

let prop_roundtrip_list =
  QCheck.Test.make ~name:"record lists round-trip at every frame size" ~count:200
    QCheck.(pair arb_records (int_range 1 5))
    (fun (rs, frame_records) ->
      let st, out = Tbin.decode_string (Tbin.encode_string ~frame_records rs) in
      Tbin.failures st = 0 && out = rs)

let prop_one_byte_feed =
  QCheck.Test.make ~name:"one-byte feeding decodes identically" ~count:40 arb_records
    (fun rs ->
      let s = Tbin.encode_string ~frame_records:3 rs in
      QCheck.assume (String.length s < 4096);
      let d = Tbin.Decoder.create () in
      String.iter (fun ch -> Tbin.Decoder.feed d (String.make 1 ch)) s;
      Tbin.Decoder.finish d;
      let out = drain d in
      Tbin.failures (Tbin.Decoder.stats d) = 0 && out = rs)

let test_menagerie_roundtrip () =
  let rs = menagerie () in
  check_roundtrip "menagerie" rs;
  check_roundtrip ~frame_records:1 "menagerie, one record per frame" rs;
  check_roundtrip ~frame_records:7 "menagerie, frame splits inside records" rs

let test_split_at_every_offset () =
  (* A small diverse stream, cut into two feeds at every byte offset:
     framing must never depend on chunk boundaries. *)
  let rs = List.init 12 simple in
  let s = Tbin.encode_string ~frame_records:5 rs in
  for i = 0 to String.length s do
    let d = Tbin.Decoder.create () in
    Tbin.Decoder.feed d (String.sub s 0 i);
    Tbin.Decoder.feed d (String.sub s i (String.length s - i));
    Tbin.Decoder.finish d;
    let out = drain d in
    if Tbin.failures (Tbin.Decoder.stats d) <> 0 then
      Alcotest.failf "split at %d: decode failures" i;
    if out <> rs then Alcotest.failf "split at %d: records differ" i
  done

(* ---------- decoder mechanics ---------- *)

let test_empty_and_magic_only () =
  let st, out = Tbin.decode_string "" in
  Alcotest.(check int) "empty: no failures" 0 (Tbin.failures st);
  Alcotest.(check int) "empty: no records" 0 (List.length out);
  let st, out = Tbin.decode_string Tbin.magic in
  Alcotest.(check int) "magic only: no failures" 0 (Tbin.failures st);
  Alcotest.(check int) "magic only: no records" 0 (List.length out);
  let st, out = Tbin.decode_string (Tbin.encode_string []) in
  Alcotest.(check int) "empty stream: no failures" 0 (Tbin.failures st);
  Alcotest.(check int) "empty stream: no records" 0 (List.length out)

let test_garbage_is_missing_header () =
  let st, out = Tbin.decode_string "hello, this is not a tbin stream at all" in
  Alcotest.(check int) "one failure" 1 (Tbin.failures st);
  Alcotest.(check int) "counted as missing header" 1 st.Tbin.missing_header;
  Alcotest.(check int) "no records" 0 (List.length out)

let test_chunked_equals_whole () =
  let rs = menagerie () in
  let s = Tbin.encode_string ~frame_records:4 rs in
  let st_whole, out_whole = Tbin.decode_string s in
  List.iter
    (fun chunk ->
      let st_c, out_c = decode_chunked chunk s in
      if st_c <> st_whole then Alcotest.failf "chunk %d: stats differ" chunk;
      if out_c <> out_whole then Alcotest.failf "chunk %d: records differ" chunk)
    [ 1; 2; 3; 7; 64; 4096 ]

let test_offsets_and_reset () =
  let rs = List.init 100 simple in
  let s = Tbin.encode_string ~frame_records:10 rs in
  let d = Tbin.Decoder.create () in
  Tbin.Decoder.feed d s;
  Tbin.Decoder.finish d;
  let pairs = ref [] in
  let rec go () =
    match Tbin.Decoder.next d with
    | Some (r, off) ->
        pairs := (r, off) :: !pairs;
        go ()
    | None -> ()
  in
  go ();
  let pairs = List.rev !pairs in
  Alcotest.(check int) "all records delivered" 100 (List.length pairs);
  Alcotest.(check int64) "consumed the whole stream"
    (Int64.of_int (String.length s))
    (Tbin.Decoder.consumed d);
  let offs = List.map snd pairs in
  List.iteri
    (fun i off ->
      if Int64.compare off 0L < 0 || Int64.compare off (Int64.of_int (String.length s)) > 0
      then Alcotest.failf "offset %Ld out of range at %d" off i)
    offs;
  ignore
    (List.fold_left
       (fun prev off ->
         if Int64.compare off prev < 0 then Alcotest.failf "offsets not monotone";
         off)
       0L offs);
  (* Resume from the offset reported mid-stream: at-least-once at frame
     granularity, so the replayed records are a frame-aligned suffix
     that contains everything from the resume point on. *)
  let off55 = List.nth offs 55 in
  let d2 = Tbin.Decoder.create () in
  Tbin.Decoder.reset_at d2 off55;
  let at = Int64.to_int off55 in
  Tbin.Decoder.feed d2 (String.sub s at (String.length s - at));
  Tbin.Decoder.finish d2;
  let replay = drain d2 in
  Alcotest.(check int) "replay decodes clean" 0 (Tbin.failures (Tbin.Decoder.stats d2));
  let k = 100 - List.length replay in
  if k > 55 then Alcotest.failf "replay from offset of record 55 starts at %d" k;
  if replay <> drop k rs then Alcotest.failf "replay is not a suffix of the stream"

let test_writer_flush_appendable () =
  let b = Buffer.create 256 in
  let w = Tbin.Writer.create ~frame_records:100 (Buffer.add_string b) in
  let rs = List.init 10 simple in
  List.iteri (fun i r -> if i = 5 then Tbin.Writer.flush w; Tbin.Writer.add w r) rs;
  Alcotest.(check int) "written counts records" 10 (Tbin.Writer.written w);
  Tbin.Writer.close w;
  let st, out = Tbin.decode_string (Buffer.contents b) in
  Alcotest.(check int) "no failures" 0 (Tbin.failures st);
  Alcotest.(check int) "two frames" 2 st.Tbin.frames;
  if out <> rs then Alcotest.failf "flush changed the record stream"

let test_obs_mirror () =
  let obs = Nt_obs.Obs.create () in
  let d = Tbin.Decoder.create ~obs () in
  let rs = List.init 64 simple in
  let s = Tbin.encode_string ~frame_records:32 rs in
  (* damage the second frame: flip a byte comfortably past the header *)
  let m = Bytes.of_string s in
  let mid = String.length s - 40 in
  Bytes.set m mid (Char.chr (Char.code (Bytes.get m mid) lxor 0xff));
  Tbin.Decoder.feed d (Bytes.to_string m);
  Tbin.Decoder.finish d;
  ignore (drain d);
  let st = Tbin.Decoder.stats d in
  let v name = Nt_obs.Obs.value (Nt_obs.Obs.counter obs name) in
  Alcotest.(check int) "frames mirrored" st.Tbin.frames (v "tbin.frames");
  Alcotest.(check int) "records mirrored" st.Tbin.records (v "tbin.records");
  Alcotest.(check int) "skipped bytes mirrored" st.Tbin.skipped_bytes (v "tbin.skipped_bytes");
  Alcotest.(check int) "one failure" 1 (Tbin.failures st);
  ignore (Tbin.Decoder.footprint d : Nt_obs.Footprint.t)

(* ---------- corruption ---------- *)

let test_single_bit_flips () =
  let rs = List.init 320 simple in
  let s = Tbin.encode_string ~frame_records:32 rs in
  let rng = Random.State.make [| 0x7b17; 1 |] in
  for _ = 1 to 300 do
    let pos = Random.State.int rng (String.length s) in
    let bit = Random.State.int rng 8 in
    let m = Bytes.of_string s in
    Bytes.set m pos (Char.chr (Char.code (Bytes.get m pos) lxor (1 lsl bit)));
    let st, out = Tbin.decode_string (Bytes.to_string m) in
    let f = Tbin.failures st in
    if f <> 1 then
      Alcotest.failf "flip at %d bit %d: %d failures, want exactly 1 (%s)" pos bit f
        (Tbin.stats_to_string st);
    if List.length out < 320 - 32 then
      Alcotest.failf "flip at %d bit %d: lost more than one frame (%d records)" pos bit
        (List.length out)
  done

let test_truncations () =
  let rs = List.init 320 simple in
  let s = Tbin.encode_string ~frame_records:32 rs in
  let len = String.length s in
  let k = ref 0 in
  while !k <= len do
    let st, out = Tbin.decode_string (String.sub s 0 !k) in
    if Tbin.failures st > 1 then
      Alcotest.failf "truncation at %d: %d failures (%s)" !k (Tbin.failures st)
        (Tbin.stats_to_string st);
    if List.length out mod 32 <> 0 then
      Alcotest.failf "truncation at %d: %d records, not whole frames" !k (List.length out);
    k := !k + 7
  done;
  let st, out = Tbin.decode_string s in
  Alcotest.(check int) "untruncated: clean" 0 (Tbin.failures st);
  Alcotest.(check int) "untruncated: all records" 320 (List.length out);
  let st, _ = Tbin.decode_string (String.sub s 0 (len - 3)) in
  Alcotest.(check int) "mid-frame cut is a truncated tail" 1 st.Tbin.truncated_tails

let test_concat_resync () =
  let rs = List.init 320 simple in
  let s = Tbin.encode_string ~frame_records:32 rs in
  let rng = Random.State.make [| 0xc0; 2 |] in
  let garbage = String.init 137 (fun _ -> Char.chr (Random.State.int rng 256)) in
  let st, out = Tbin.decode_string (s ^ garbage ^ s) in
  Alcotest.(check int) "both streams recovered" 640 (List.length out);
  Alcotest.(check int) "one desync episode" 1 (Tbin.failures st);
  Alcotest.(check int) "counted as lost sync" 1 st.Tbin.lost_sync;
  if st.Tbin.skipped_bytes < String.length garbage then
    Alcotest.failf "skipped %d bytes, garbage was %d" st.Tbin.skipped_bytes
      (String.length garbage)

let test_mutation_storm () =
  let rs = List.init 320 simple in
  let s = Tbin.encode_string ~frame_records:32 rs in
  let len = String.length s in
  let rng = Random.State.make [| 0x6d75; 7 |] in
  let rand_slice () =
    let a = Random.State.int rng len in
    let l = min (1 + Random.State.int rng 64) (len - a) in
    (a, l)
  in
  for i = 1 to 10_000 do
    let m =
      match Random.State.int rng 6 with
      | 0 ->
          let b = Bytes.of_string s in
          for _ = 0 to Random.State.int rng 8 do
            let p = Random.State.int rng len in
            Bytes.set b p
              (Char.chr (Char.code (Bytes.get b p) lxor (1 lsl Random.State.int rng 8)))
          done;
          Bytes.to_string b
      | 1 -> String.sub s 0 (Random.State.int rng (len + 1))
      | 2 ->
          let p = Random.State.int rng (len + 1) in
          let ins = String.init (1 + Random.State.int rng 64) (fun _ -> Char.chr (Random.State.int rng 256)) in
          String.sub s 0 p ^ ins ^ String.sub s p (len - p)
      | 3 ->
          let a, l = rand_slice () in
          String.sub s 0 a ^ String.sub s (a + l) (len - a - l)
      | 4 ->
          let a, l = rand_slice () in
          let b = Bytes.of_string s in
          for j = a to a + l - 1 do
            Bytes.set b j (Char.chr (Random.State.int rng 256))
          done;
          Bytes.to_string b
      | _ ->
          let a, l = rand_slice () in
          String.sub s 0 a ^ String.sub s a l ^ String.sub s a (len - a)
    in
    (* Totality: counted, never raised; delivery never exceeds the
       input's record population; the queue count agrees with stats. *)
    let st, out = Tbin.decode_string m in
    if List.length out <> st.Tbin.records then
      Alcotest.failf "mutation %d: delivered %d <> stats %d" i (List.length out) st.Tbin.records;
    if st.Tbin.records > 320 then Alcotest.failf "mutation %d: invented records" i;
    (* Differential oracle on a subsample: whole-buffer decode and
       13-byte chunked feeding must agree bit-for-bit on any input. *)
    if i mod 100 = 0 then begin
      let st_c, out_c = decode_chunked 13 m in
      if st_c <> st || out_c <> out then
        Alcotest.failf "mutation %d: chunked decode diverges (%s vs %s)" i
          (Tbin.stats_to_string st_c) (Tbin.stats_to_string st)
    end
  done

(* ---------- golden wire lock ---------- *)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let golden_ntb = "golden/tbin_fixture.ntb"
let golden_lines = "golden/tbin_fixture.lines"
let fixture_bytes () = Tbin.encode_string ~frame_records:8 (menagerie ())

(* NT_TBIN_GOLDEN_UPDATE=<dir> rewrites the source-tree goldens. *)
let () =
  match Sys.getenv_opt "NT_TBIN_GOLDEN_UPDATE" with
  | None -> ()
  | Some dir ->
      let write path s =
        let oc = open_out_bin path in
        output_string oc s;
        close_out oc
      in
      write (Filename.concat dir "tbin_fixture.ntb") (fixture_bytes ());
      write
        (Filename.concat dir "tbin_fixture.lines")
        (String.concat "" (List.map (fun r -> Record.to_line r ^ "\n") (menagerie ())))

let test_golden_encode () =
  Alcotest.(check string)
    "encoding the fixture records reproduces the checked-in bytes" (read_file golden_ntb)
    (fixture_bytes ())

let test_golden_decode () =
  let st, out = Tbin.decode_string (read_file golden_ntb) in
  Alcotest.(check int) "fixture decodes clean" 0 (Tbin.failures st);
  Alcotest.(check string) "fixture decodes to the locked text rendering"
    (read_file golden_lines)
    (String.concat "" (List.map (fun r -> Record.to_line r ^ "\n") out))

(* ---------- analysis differential ---------- *)

let sections = [ `Summary; `Runs; `Names; `Hourly ]

let render label texts =
  String.concat "\n"
    (List.map
       (fun (s, text) -> Printf.sprintf "== %s %s ==\n%s" label (Nt_par.Report.section_name s) text)
       texts)

let with_temp suffix f =
  let path = Filename.temp_file "nt_tbin_test" suffix in
  Fun.protect ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ()) (fun () -> f path)

let simulated_records () =
  let start = Nt_util.Trace_week.time_of ~day:Nt_util.Trace_week.Wed ~hour:9 ~minute:0 in
  let out = ref [] in
  let config = { Nt_workload.Email.default_config with Nt_workload.Email.users = 3 } in
  ignore
    (Nt_core.Pipeline.simulate_campus ~config ~start ~stop:(start +. 300.)
       ~sink:(fun r -> out := r :: !out)
       ());
  List.rev !out

let test_differential_text_tbin_stream () =
  let records = simulated_records () in
  Alcotest.(check bool) "workload produced records" true (List.length records > 100);
  with_temp ".trace" (fun text_path ->
      with_temp ".ntb" (fun tbin_path ->
          let oc = open_out_bin text_path in
          ignore (Record.write_channel oc (List.to_seq records));
          close_out oc;
          let oc = open_out_bin tbin_path in
          ignore (Tbin.write_channel ~frame_records:64 oc (List.to_seq records));
          close_out oc;
          let from_text = Nt_core.Pipeline.load_trace text_path in
          let from_tbin = Nt_core.Pipeline.load_trace ("tbin:" ^ tbin_path) in
          let from_sniff = Nt_core.Pipeline.load_trace tbin_path in
          if from_tbin <> records then Alcotest.failf "tbin: load changed the records";
          if from_sniff <> records then Alcotest.failf "sniffed load changed the records";
          List.iter
            (fun jobs ->
              let label = Printf.sprintf "jobs %d" jobs in
              let base =
                render label
                  (Nt_core.Pipeline.analyze_records ~jobs ~records_per_shard:64 ~sections
                     from_text)
              in
              let tbin =
                render label
                  (Nt_core.Pipeline.analyze_records ~jobs ~records_per_shard:64 ~sections
                     from_tbin)
              in
              let streamed, n =
                Nt_core.Pipeline.analyze_stream ~jobs ~records_per_shard:64 ~sections
                  (fun emit -> ignore (Nt_core.Pipeline.iter_tbin tbin_path emit))
              in
              Alcotest.(check int)
                (label ^ ": streamed record count")
                (List.length records) n;
              Alcotest.(check string) (label ^ ": text vs tbin") base tbin;
              Alcotest.(check string) (label ^ ": text vs streamed") base
                (render label streamed))
            [ 1; 4 ]))

let test_differential_pcap_leg () =
  (* The capture path: pcap -> records, then those records through the
     text and tbin containers must analyze identically. *)
  let start = Nt_util.Trace_week.time_of ~day:Nt_util.Trace_week.Wed ~hour:9 ~minute:0 in
  with_temp ".pcap" (fun pcap_path ->
      let oc = open_out_bin pcap_path in
      let writer = Nt_net.Pcap.writer_to_channel oc in
      let config = { Nt_workload.Email.default_config with Nt_workload.Email.users = 2 } in
      ignore
        (Nt_core.Pipeline.campus_to_pcap ~config ~start ~stop:(start +. 120.) ~writer ());
      close_out oc;
      let ic = open_in_bin pcap_path in
      let reader = Nt_net.Pcap.reader_of_channel ic in
      let capture = Nt_trace.Capture.create () in
      Nt_trace.Capture.feed_pcap capture reader;
      let _, captured = Nt_trace.Capture.finish capture in
      close_in ic;
      Alcotest.(check bool) "capture produced records" true (List.length captured > 50);
      let st, out = Tbin.decode_string (Tbin.encode_string ~frame_records:64 captured) in
      Alcotest.(check int) "captured records round-trip clean" 0 (Tbin.failures st);
      if out <> captured then Alcotest.failf "tbin changed the captured records";
      let base =
        render "pcap" (Nt_core.Pipeline.analyze_records ~jobs:4 ~records_per_shard:64 ~sections captured)
      in
      let via_tbin =
        render "pcap" (Nt_core.Pipeline.analyze_records ~jobs:4 ~records_per_shard:64 ~sections out)
      in
      Alcotest.(check string) "pcap records via tbin analyze identically" base via_tbin)

(* ---------- suite ---------- *)

let () =
  Alcotest.run "nt_tbin"
    [
      ( "varint",
        [
          Alcotest.test_case "boundary values round-trip" `Quick test_varint_bounds;
          Alcotest.test_case "truncated and overlong raise Corrupt" `Quick test_varint_corrupt;
        ] );
      ( "frame",
        [
          Alcotest.test_case "adler32 reference values" `Quick test_adler32;
          QCheck_alcotest.to_alcotest prop_rle_roundtrip;
          QCheck_alcotest.to_alcotest prop_rle_roundtrip_runs;
          Alcotest.test_case "decompress rejects bad shapes" `Quick test_rle_rejects;
        ] );
      ( "roundtrip",
        [
          Alcotest.test_case "menagerie of every constructor" `Quick test_menagerie_roundtrip;
          QCheck_alcotest.to_alcotest prop_roundtrip_one;
          QCheck_alcotest.to_alcotest prop_roundtrip_list;
          QCheck_alcotest.to_alcotest prop_one_byte_feed;
          Alcotest.test_case "frame split at every byte offset" `Quick
            test_split_at_every_offset;
        ] );
      ( "decoder",
        [
          Alcotest.test_case "empty and header-only streams" `Quick test_empty_and_magic_only;
          Alcotest.test_case "garbage counts one missing header" `Quick
            test_garbage_is_missing_header;
          Alcotest.test_case "chunked feeding equals whole-buffer" `Quick
            test_chunked_equals_whole;
          Alcotest.test_case "replay offsets and reset_at" `Quick test_offsets_and_reset;
          Alcotest.test_case "writer flush keeps the stream appendable" `Quick
            test_writer_flush_appendable;
          Alcotest.test_case "decoder mirrors stats onto obs" `Quick test_obs_mirror;
        ] );
      ( "corruption",
        [
          Alcotest.test_case "single bit flips cost exactly one counter" `Quick
            test_single_bit_flips;
          Alcotest.test_case "truncations lose only the cut frame" `Quick test_truncations;
          Alcotest.test_case "concatenated streams resync" `Quick test_concat_resync;
          Alcotest.test_case "10k-mutation storm: total, conservative" `Slow
            test_mutation_storm;
        ] );
      ( "golden",
        [
          Alcotest.test_case "encode matches checked-in bytes" `Quick test_golden_encode;
          Alcotest.test_case "fixture decodes to locked text" `Quick test_golden_decode;
        ] );
      ( "differential",
        [
          Alcotest.test_case "text vs tbin vs streamed, jobs 1 and 4" `Slow
            test_differential_text_tbin_stream;
          Alcotest.test_case "pcap-derived records via tbin" `Slow test_differential_pcap_leg;
        ] );
    ]
