(** The declarative rule registry of nfslint.

    Every invariant the linter can check is declared here as a {!t}:
    a stable string id, the family it belongs to, a default severity
    and a one-line description. The checking code in
    {!Protocol_check}, {!Anon_check} and {!Hygiene_check} refers to
    rules by these descriptors; {!Engine} consults the registry to
    enable/disable rules by id and to render the catalog. Adding a
    rule means adding a descriptor here and emitting findings for it
    from exactly one checker. *)

type severity = Info | Warn | Error

val severity_to_string : severity -> string
val severity_compare : severity -> severity -> int
(** Orders [Info < Warn < Error]. *)

type family = Protocol | Anonymization | Hygiene

val family_to_string : family -> string

type t = {
  id : string;  (** stable identifier, e.g. ["unanswered-call"] *)
  family : family;
  severity : severity;
  doc : string;  (** one-line description for [nfslint --rules] *)
}

(** {2 Protocol family} — per-record trace invariants *)

val unanswered_call : t
(** A call whose reply was never seen (lost at capture or on the wire). *)

val duplicate_xid : t
(** Two records reuse the same (client, XID) pair within the XID
    window: either a retransmission leaked past dedup or the trace was
    spliced. *)

val fh_use_after_remove : t
(** A successful operation on a handle after the server acknowledged
    the removal of its last link. *)

val fh_before_introduction : t
(** READ/WRITE/COMMIT on a handle the trace never introduced (no
    LOOKUP/CREATE result and no earlier directory use). *)

val offset_beyond_size : t
(** A successful READ/WRITE whose [offset + count] lies beyond the file
    size attested by the same reply's post-op attributes. *)

val reply_before_call : t
(** Reply timestamp earlier than its call's. *)

val non_monotonic_time : t
(** Call timestamps run backwards by more than the reorder window. *)

val bad_io_range : t
(** Negative offset or count in a READ/WRITE/COMMIT call. *)

(** {2 Anonymization family} — leak safety of released traces *)

val raw_ip : t
(** Client or server address outside the anonymizer's private pool. *)

val unmapped_id : t
(** UID/GID that is neither preserved nor inside the anonymizer's
    mapped range. *)

val name_residue : t
(** A name component that does not parse as anonymizer output
    (token-shape check against the affix grammar). *)

val dictionary_word : t
(** A name containing a dictionary word — the strongest leak signal. *)

(** {2 Capture-hygiene family} — consistency of {!Nt_trace.Capture.stats} *)

val loss_accounting : t
(** Capture counters violate their conservation laws
    (e.g. calls <> replies + lost replies). *)

val capture_loss : t
(** The capture saw loss: orphan replies, lost replies or TCP gaps. *)

val frame_damage : t
(** Undecodable or corrupt frames, or RPC decode errors. *)

val salvage_gap : t
(** Pcap bytes were skipped during salvage without a matching salvaged
    record or truncated-tail flag. *)

val all : t list
(** Every rule, protocol family first. *)

val find : string -> t option
(** Look a rule up by id. *)
