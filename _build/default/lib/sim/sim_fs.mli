(** The server-side file system backing the simulated NFS server.

    Tracks exactly the state an NFS server exposes through the
    protocol: the namespace, per-file attributes and sizes. File *data*
    content is not stored (no analysis reads payload bytes), only sizes
    and times — which is also all a passive tracer can see. *)

type t

type node
(** An inode. *)

exception Fs_error of Nt_nfs.Types.nfsstat

val create : ?fsid:int -> unit -> t
val root : t -> node
val fsid : t -> int

val node_of_fh : t -> Nt_nfs.Fh.t -> node option
val fh_of_node : t -> node -> Nt_nfs.Fh.t

val fileid : node -> int
val ftype : node -> Nt_nfs.Types.ftype
val size : node -> int64
val fattr : t -> node -> Nt_nfs.Types.fattr
val nlink : node -> int

(** All mutating operations take the current simulation [time] so
    mtime/ctime on the wire are faithful. Operations raise {!Fs_error}
    with the proper NFS status on failure (ENOENT, EEXIST, ENOTDIR,
    ENOTEMPTY, ...). *)

val lookup : t -> node -> string -> node
val mkdir : t -> time:float -> parent:node -> name:string -> mode:int -> node
val create_file : t -> time:float -> parent:node -> name:string -> mode:int -> uid:int -> gid:int -> node
val symlink : t -> time:float -> parent:node -> name:string -> target:string -> node
val readlink : node -> string
val remove : t -> time:float -> parent:node -> name:string -> unit
val rmdir : t -> time:float -> parent:node -> name:string -> unit
val rename : t -> time:float -> from_parent:node -> from_name:string -> to_parent:node -> to_name:string -> unit
val link : t -> time:float -> node -> to_parent:node -> to_name:string -> unit

val write : t -> time:float -> node -> offset:int64 -> count:int -> unit
(** Extends the size when the write reaches past EOF and bumps mtime. *)

val truncate : t -> time:float -> node -> int64 -> unit
val touch_read : t -> time:float -> node -> unit
(** Update atime on a read. *)

val set_mtime : t -> time:float -> node -> unit

val entries : node -> (string * node) list
(** Directory listing, unordered. Raises {!Fs_error} ENOTDIR. *)

val node_count : t -> int

val mkdir_path : t -> time:float -> string list -> node
(** Convenience for building initial trees: mkdir -p. *)
