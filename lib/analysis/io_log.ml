module Record = Nt_trace.Record
module Ops = Nt_nfs.Ops
module Fh = Nt_nfs.Fh

type access = {
  at : float;
  offset : int;
  count : int;
  is_read : bool;
  at_eof : bool;
  file_size : int;
}

module Fh_tbl = Hashtbl.Make (struct
  type t = Fh.t

  let equal = Fh.equal
  let hash = Fh.hash
end)

type file_log = { mutable items : access list; mutable n : int }

type t = { files : file_log Fh_tbl.t; mutable total : int }

let create () = { files = Fh_tbl.create 1024; total = 0 }

let log_for t fh =
  match Fh_tbl.find_opt t.files fh with
  | Some l -> l
  | None ->
      let l = { items = []; n = 0 } in
      Fh_tbl.add t.files fh l;
      l
[@@nt.unbounded "one log per distinct file handle; the per-file journal is the analysis product"]

let add t fh access =
  let l = log_for t fh in
  l.items <- access :: l.items;
  l.n <- l.n + 1;
  t.total <- t.total + 1
[@@nt.alloc_ok "the journal entry is the product: one access record kept per I/O"]
[@@nt.unbounded "access journal, one entry per I/O by design; consumed by the runs pass"]

let observe t (r : Record.t) =
  match r.call with
  | Ops.Read { fh; offset; count } ->
      let moved, eof, size =
        match r.result with
        | Some (Ok (Ops.R_read { count = c; eof; attr })) ->
            let size =
              match attr with Some a -> Int64.to_int a.size | None -> Int64.to_int offset + c
            in
            (c, eof, size)
        | _ -> (count, false, Int64.to_int offset + count)
      in
      if moved > 0 then
        add t fh
          {
            at = r.time;
            offset = Int64.to_int offset;
            count = moved;
            is_read = true;
            at_eof = eof || Int64.to_int offset + moved >= size;
            file_size = size;
          }
  | Ops.Write { fh; offset; count; _ } ->
      let size =
        match Record.post_size r with
        | Some s -> Int64.to_int s
        | None -> Int64.to_int offset + count
      in
      (* Only READ replies carry an EOF flag on the wire; a write that
         extends the file always ends at the new EOF, so using it as a
         run terminator would shatter every append into single-access
         runs (and the paper's Figure 5 shows multi-megabyte write
         runs, so its splitter cannot have done that). *)
      if count > 0 then
        add t fh
          {
            at = r.time;
            offset = Int64.to_int offset;
            count;
            is_read = false;
            at_eof = false;
            file_size = size;
          }
  | _ -> ()

let merge a b =
  (* Per-file lists are kept newest-first, so appending [a]'s list after
     [b]'s reproduces the sequential arrival order exactly. This is the
     whole boundary carry for the downstream run/reorder/sequentiality
     analyses: a run or reorder window straddling a shard edge is made
     whole here, before any splitter or window ever sees the stream. *)
  Fh_tbl.iter
    (fun fh (src : file_log) ->
      match Fh_tbl.find_opt a.files fh with
      | None -> Fh_tbl.add a.files fh src
      | Some dst ->
          dst.items <- src.items @ dst.items;
          dst.n <- dst.n + src.n)
    b.files;
  a.total <- a.total + b.total;
  a

let files t = Fh_tbl.length t.files
let accesses t = t.total

let iter_files t f =
  Fh_tbl.iter
    (fun fh l ->
      let arr = Array.of_list (List.rev l.items) in
      f fh arr)
    t.files

let sorted_files t =
  let all =
    Fh_tbl.fold (fun fh l acc -> (fh, Array.of_list (List.rev l.items)) :: acc) t.files []
  in
  let arr = Array.of_list all in
  Array.sort (fun (x, _) (y, _) -> Fh.compare x y) arr;
  arr

(* The paper's partial sort: for each position, look ahead within the
   temporal window for the smallest-offset access and swap it to the
   front if the current one is out of order. *)
let sort_window w accesses =
  let a = Array.copy accesses in
  let n = Array.length a in
  let swaps = ref 0 in
  if w > 0. then
    for i = 0 to n - 2 do
      let best = ref i in
      let j = ref (i + 1) in
      while !j < n && a.(!j).at -. a.(i).at <= w do
        if a.(!j).offset < a.(!best).offset then best := !j;
        incr j
      done;
      if !best <> i && a.(!best).offset < a.(i).offset then begin
        let tmp = a.(i) in
        a.(i) <- a.(!best);
        a.(!best) <- tmp;
        incr swaps
      end
    done;
  (a, !swaps)

let footprint t =
  (* The journal is the product: one boxed access record (+ list cons)
     per I/O, one table entry + handle per distinct file. *)
  let files = Fh_tbl.length t.files in
  Nt_obs.Footprint.v ~cards:(files + t.total) ~words:(8 + (files * 15) + (t.total * 10))
