test/test_xdr.ml: Alcotest Bool Gen Int32 Int64 List Nt_xdr QCheck QCheck_alcotest String
