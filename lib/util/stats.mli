(** Streaming and batch descriptive statistics used by every analysis. *)

type t
(** Online accumulator (Welford) for count / mean / variance / extrema. *)

val create : unit -> t
val add : t -> float -> unit
val count : t -> int
val total : t -> float
val mean : t -> float
(** 0 when empty. *)

val variance : t -> float
(** Sample variance (n-1 denominator); 0 when count < 2. *)

val stddev : t -> float

val stddev_pct_of_mean : t -> float
(** Standard deviation expressed as a percentage of the mean, the form
    used throughout Table 5 of the paper. 0 when the mean is 0. *)

val min : t -> float
(** [nan] when empty. *)

val max : t -> float
(** [nan] when empty. *)

val merge : t -> t -> t
(** Combine two accumulators (Chan et al. parallel update). *)

val percentile : float array -> float -> float
(** [percentile data p] with [p] in [\[0,100\]]; sorts a copy; linear
    interpolation between order statistics. [nan] on empty input. *)

val median : float array -> float

val footprint : t -> Nt_obs.Footprint.t
(** Constant: a Welford accumulator never grows. *)
