(** A hash table with a hard capacity and FIFO eviction.

    The linter must stream million-record traces in bounded memory, but
    several of its rules need per-key state (live handles, outstanding
    XIDs, name bindings). This table keeps at most [capacity] bindings;
    inserting beyond that evicts the oldest insertion. Eviction can
    only make the linter forget — i.e. miss a violation — never invent
    one, so capping state trades recall for memory, not soundness. *)

type ('k, 'v) t

val create : capacity:int -> ('k, 'v) t

val set : ('k, 'v) t -> 'k -> 'v -> unit
(** Insert or replace. Replacement does not refresh insertion order. *)

val find : ('k, 'v) t -> 'k -> 'v option
val remove : ('k, 'v) t -> 'k -> unit
val mem : ('k, 'v) t -> 'k -> bool
val length : ('k, 'v) t -> int

val evictions : ('k, 'v) t -> int
(** Bindings evicted by the capacity limit so far (explicit {!remove}
    does not count). *)
