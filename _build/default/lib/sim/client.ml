module Types = Nt_nfs.Types
module Ops = Nt_nfs.Ops
module Fh = Nt_nfs.Fh
module Record = Nt_trace.Record
module Prng = Nt_util.Prng

type config = {
  ip : Nt_net.Ip_addr.t;
  version : int;
  rtt : float;
  service_time : float;
  attr_ttl : float;
  nfsiods : int;
  reorder_prob : float;
  reorder_mean : float;
  reorder_cap : float;
  rsize : int;
  wsize : int;
  cache_capacity : int;  (* bytes of file data the client can cache *)
}

let default_config ~ip ~version =
  {
    ip;
    version;
    rtt = 0.0008;
    service_time = 0.0002;
    attr_ttl = 10.;
    nfsiods = 4;
    reorder_prob = 0.8;
    reorder_mean = 0.002;
    reorder_cap = 0.008;
    rsize = 8192;
    wsize = 8192;
    cache_capacity = 256 * 1024 * 1024;
  }

type cached = {
  mutable attr : Types.fattr option;
  mutable attr_expires : float;
  mutable data_valid : bool;
  mutable data_mtime : Types.time;  (* server mtime the cached data corresponds to *)
  mutable charged : int;  (* bytes charged against the cache capacity *)
  mutable last_used : float;
}

module Fh_tbl = Hashtbl.Make (struct
  type t = Fh.t

  let equal = Fh.equal
  let hash = Fh.hash
end)

type t = {
  config : config;
  server : Server.t;
  sink : Record.t -> unit;
  rng : Prng.t;
  cache : cached Fh_tbl.t;
  (* directory name lookup cache: (dir, name) -> (fh, expires) *)
  dnlc : (string * string, Fh.t * float) Hashtbl.t;
  mutable xid : int;
  mutable issued : int;
  mutable congested : bool;
  mutable cached_bytes : int;
}

let create config ~server ~sink ~rng =
  {
    config;
    server;
    sink;
    rng;
    cache = Fh_tbl.create 512;
    dnlc = Hashtbl.create 512;
    xid = Prng.bits30 rng;
    issued = 0;
    congested = false;
    cached_bytes = 0;
  }

type session = { client : t; mutable now : float; uid : int; gid : int }

let session t ~time ~uid ~gid = { client = t; now = time; uid; gid }
let now s = s.now
let set_now s time = s.now <- time
let config t = t.config
let calls_issued t = t.issued

let entry t fh =
  match Fh_tbl.find_opt t.cache fh with
  | Some e -> e
  | None ->
      let e =
        { attr = None; attr_expires = neg_infinity; data_valid = false;
          data_mtime = { Types.seconds = 0; nanos = 0 }; charged = 0; last_used = neg_infinity }
      in
      Fh_tbl.add t.cache fh e;
      e

let uncharge t e =
  t.cached_bytes <- t.cached_bytes - e.charged;
  e.charged <- 0

let invalidate t fh =
  match Fh_tbl.find_opt t.cache fh with
  | Some e ->
      e.attr <- None;
      e.attr_expires <- neg_infinity;
      e.data_valid <- false;
      uncharge t e
  | None -> ()

(* LRU capacity eviction: workstation memory is finite, so cached file
   data ages out; the next access re-reads from the server. This is the
   mechanism behind the residual read traffic on EECS. *)
let evict_to_fit t =
  if t.cached_bytes > t.config.cache_capacity then begin
    let victims =
      Fh_tbl.fold (fun _ e acc -> if e.data_valid then (e.last_used, e) :: acc else acc) t.cache []
      |> List.sort (fun (a, _) (b, _) -> Float.compare a b)
    in
    let target = t.config.cache_capacity * 3 / 4 in
    List.iter
      (fun (_, e) ->
        if t.cached_bytes > target then begin
          e.data_valid <- false;
          uncharge t e
        end)
      victims
  end

let mark_data_valid t e ~now =
  e.data_valid <- true;
  e.last_used <- now;
  let size =
    match e.attr with Some a -> Int64.to_int (Int64.min a.size 1_000_000_000L) | None -> 8192
  in
  t.cached_bytes <- t.cached_bytes - e.charged + size;
  e.charged <- size;
  evict_to_fit t

(* nfsiod dispatch delay. Reordering on real clients is bursty: while
   the daemons are contended (busy periods of the workstation) many
   calls are displaced by a few milliseconds; in quiet periods almost
   none are. A two-state Markov model captures this: with more nfsiods
   the client enters congestion more often. Rare scheduler starvation
   delays a call up to a second (the paper observed exactly that). *)
let dispatch_jitter t =
  let k = t.config.nfsiods in
  if k <= 1 then 0.
  else begin
    (if t.congested then begin
       if Prng.chance t.rng 0.005 then t.congested <- false
     end
     else if Prng.chance t.rng (0.0002 *. float_of_int (k - 1)) then t.congested <- true);
    if Prng.chance t.rng 0.0004 then 0.02 +. Prng.float t.rng 0.98
    else if t.congested && Prng.chance t.rng t.config.reorder_prob then
      Float.min t.config.reorder_cap
        (Nt_util.Dist.exponential t.rng ~rate:(1. /. t.config.reorder_mean))
    else Prng.float t.rng 0.0001
  end

(* Issue one call: the wire time includes dispatch jitter; the session
   clock advances to the reply's arrival. [pipelined] spaces bulk
   chunks by a fraction of the RTT instead of a full round trip. *)
let issue ?(pipelined = false) s (call : Ops.call) : Ops.result =
  let t = s.client in
  let jitter = dispatch_jitter t in
  let wire_time = s.now +. jitter in
  let result = Server.handle t.server ~time:wire_time call in
  let reply_time = wire_time +. t.config.service_time +. (t.config.rtt /. 2.) in
  t.xid <- (t.xid + 1) land 0xFFFFFFFF;
  t.issued <- t.issued + 1;
  t.sink
    {
      Record.time = wire_time;
      reply_time = Some reply_time;
      client = t.config.ip;
      server = Server.ip t.server;
      version = t.config.version;
      xid = t.xid;
      uid = s.uid;
      gid = s.gid;
      call;
      result = Some result;
    };
  s.now <-
    (if pipelined then s.now +. (t.config.rtt /. 4.) +. t.config.service_time
     else s.now +. t.config.rtt +. t.config.service_time);
  result

let update_attr_cache t e ~now (attr : Types.fattr option) =
  match attr with
  | None -> ()
  | Some a ->
      (match e.attr with
      | Some prev when prev.mtime <> a.mtime -> e.data_valid <- false
      | _ -> ());
      e.attr <- Some a;
      e.attr_expires <- now +. t.config.attr_ttl

let getattr s fh =
  let t = s.client in
  match issue s (Ops.Getattr fh) with
  | Ok (R_attr a) ->
      let e = entry t fh in
      update_attr_cache t e ~now:s.now (Some a);
      Some a
  | Ok _ | Error _ ->
      invalidate t fh;
      None

let fresh_attr s fh =
  let t = s.client in
  let e = entry t fh in
  if s.now <= e.attr_expires then e.attr
  else
    match getattr s fh with Some a -> Some a | None -> None

let open_file s fh =
  let t = s.client in
  let e = entry t fh in
  let had_valid_data = e.data_valid in
  let result =
    if s.now <= e.attr_expires then if e.data_valid then `Cached else `Changed
    else begin
      match getattr s fh with
      | None -> `Error
      | Some a ->
          if e.data_valid && a.mtime = e.data_mtime then `Cached
          else begin
            e.data_valid <- false;
            `Changed
          end
    end
  in
  (* v3 clients check permissions at open. *)
  if t.config.version >= 3 && result <> `Error then ignore (issue s (Ops.Access { fh; access = 0x3F }));
  ignore had_valid_data;
  result

let cached_size s fh =
  let e = entry s.client fh in
  Option.map (fun (a : Types.fattr) -> a.size) e.attr

let read s fh ~offset ~len =
  let t = s.client in
  let e = entry t fh in
  if len <= 0 then 0
  else if e.data_valid && s.now <= e.attr_expires then begin
    (* Served entirely from the client cache: invisible to the server. *)
    e.last_used <- s.now;
    match e.attr with
    | Some a ->
        let size = a.size in
        if Int64.compare offset size >= 0 then 0
        else Int64.to_int (Int64.min (Int64.of_int len) (Int64.sub size offset))
    | None -> 0
  end
  else begin
    let chunk = t.config.rsize in
    let got = ref 0 in
    let off = ref offset in
    let remaining = ref len in
    let eof = ref false in
    while (not !eof) && !remaining > 0 do
      let want = min chunk !remaining in
      match issue ~pipelined:true s (Ops.Read { fh; offset = !off; count = want }) with
      | Ok (R_read { attr; count; eof = server_eof }) ->
          got := !got + count;
          off := Int64.add !off (Int64.of_int count);
          remaining := !remaining - count;
          if server_eof || count = 0 then eof := true;
          update_attr_cache t e ~now:s.now attr;
          (match attr with Some a -> e.data_mtime <- a.mtime | None -> ())
      | Ok _ | Error _ ->
          eof := true;
          invalidate t fh
    done;
    (* Reading to EOF makes the cache whole (the client already held
       the prefix, or just fetched it). *)
    if
      !eof
      || (match e.attr with
         | Some a -> Int64.compare (Int64.add offset (Int64.of_int len)) a.size >= 0
         | None -> false)
    then mark_data_valid t e ~now:s.now;
    !got
  end

let read_whole s fh =
  let size =
    match fresh_attr s fh with Some a -> Int64.to_int a.size | None -> 0
  in
  if size = 0 then 0 else read s fh ~offset:0L ~len:size

let write s fh ~offset ~len ~sync =
  let t = s.client in
  if len > 0 then begin
    let e = entry t fh in
    let chunk = t.config.wsize in
    let stable =
      if t.config.version >= 3 then if sync then Types.File_sync else Types.Unstable
      else Types.File_sync
    in
    let off = ref offset in
    let remaining = ref len in
    while !remaining > 0 do
      (* Chunks after the first align to wsize boundaries, as real
         clients' page cache flushing does. *)
      let to_boundary = chunk - (Int64.to_int (Int64.rem !off (Int64.of_int chunk))) in
      let n = min to_boundary !remaining in
      (match issue ~pipelined:true s (Ops.Write { fh; offset = !off; count = n; stable }) with
      | Ok (R_write { attr; _ }) ->
          update_attr_cache t e ~now:s.now attr;
          (match attr with Some a -> e.data_mtime <- a.mtime | None -> ())
      | Ok _ | Error _ -> invalidate t fh);
      off := Int64.add !off (Int64.of_int n);
      remaining := !remaining - n
    done;
    if t.config.version >= 3 && not sync then
      ignore (issue s (Ops.Commit { fh; offset; count = len }));
    (* The writer's own cache stays coherent with its writes. *)
    if e.data_valid || Int64.equal offset 0L then mark_data_valid t e ~now:s.now
  end

let append s fh ~len ~sync =
  let size = match fresh_attr s fh with Some a -> a.size | None -> 0L in
  write s fh ~offset:size ~len ~sync

let truncate s fh new_size =
  let t = s.client in
  (match issue s (Ops.Setattr { fh; attrs = { Types.empty_sattr with set_size = Some new_size } })
   with
  | Ok (R_attr a) ->
      let e = entry t fh in
      update_attr_cache t e ~now:s.now (Some a);
      e.data_mtime <- a.mtime;
      mark_data_valid t e ~now:s.now
  | Ok _ | Error _ -> invalidate t fh);
  ()

let dnlc_key dir name = (Fh.to_hex_full dir, name)

let learn_binding s ~dir ~name fh attr =
  let t = s.client in
  Hashtbl.replace t.dnlc (dnlc_key dir name) (fh, s.now +. t.config.attr_ttl);
  let e = entry t fh in
  update_attr_cache t e ~now:s.now attr

let lookup_one s ~dir ~name =
  let t = s.client in
  match Hashtbl.find_opt t.dnlc (dnlc_key dir name) with
  | Some (fh, expires) when s.now <= expires -> Some fh
  | _ -> (
      match issue s (Ops.Lookup { dir; name }) with
      | Ok (R_lookup { fh; obj; _ }) ->
          learn_binding s ~dir ~name fh obj;
          Some fh
      | Ok _ | Error _ ->
          Hashtbl.remove t.dnlc (dnlc_key dir name);
          None)

let lookup_path s path =
  let t = s.client in
  let root = Server.root_fh t.server in
  let rec go dir = function
    | [] -> Some dir
    | name :: rest -> (
        match lookup_one s ~dir ~name with Some fh -> go fh rest | None -> None)
  in
  go root path

let create_file s ~dir ~name ?(exclusive = false) ~mode () =
  let t = s.client in
  match issue s (Ops.Create { dir; name; mode; exclusive }) with
  | Ok (R_create { fh = Some fh; attr }) ->
      learn_binding s ~dir ~name fh attr;
      let e = entry t fh in
      (match attr with Some a -> e.data_mtime <- a.mtime | None -> ());
      mark_data_valid t e ~now:s.now;
      Some fh
  | Ok _ | Error _ -> None

let mkdir s ~dir ~name ~mode =
  match issue s (Ops.Mkdir { dir; name; mode }) with
  | Ok (R_create { fh = Some fh; attr }) ->
      learn_binding s ~dir ~name fh attr;
      Some fh
  | Ok _ | Error _ -> None

let symlink s ~dir ~name ~target = ignore (issue s (Ops.Symlink { dir; name; target }))

let remove s ~dir ~name =
  let t = s.client in
  (match Hashtbl.find_opt t.dnlc (dnlc_key dir name) with
  | Some (fh, _) -> invalidate t fh
  | None -> ());
  Hashtbl.remove t.dnlc (dnlc_key dir name);
  ignore (issue s (Ops.Remove { dir; name }))

let rmdir s ~dir ~name =
  Hashtbl.remove s.client.dnlc (dnlc_key dir name);
  ignore (issue s (Ops.Rmdir { dir; name }))

let rename s ~from_dir ~from_name ~to_dir ~to_name =
  let t = s.client in
  (match Hashtbl.find_opt t.dnlc (dnlc_key from_dir from_name) with
  | Some (fh, expires) -> Hashtbl.replace t.dnlc (dnlc_key to_dir to_name) (fh, expires)
  | None -> ());
  Hashtbl.remove t.dnlc (dnlc_key from_dir from_name);
  ignore (issue s (Ops.Rename { from_dir; from_name; to_dir; to_name }))

let readdir s dir =
  let t = s.client in
  let page = 4096 in
  let rec go cookie acc =
    let call =
      if t.config.version >= 3 then Ops.Readdirplus { dir; cookie; count = page }
      else Ops.Readdir { dir; cookie; count = page }
    in
    match issue s call with
    | Ok (R_readdir { entries; eof }) ->
        let acc = List.rev_append entries acc in
        if eof then List.rev acc
        else begin
          match List.rev entries with
          | last :: _ -> go last.entry_cookie acc
          | [] -> List.rev acc
        end
    | Ok _ | Error _ -> List.rev acc
  in
  go 0L []
