(** The CAMPUS workload: a central-computing email population (§3.2,
    §6.1.2).

    Mechanisms modelled, each traceable to a paper observation:

    - flat-file inboxes inside user home directories; mailboxes are
      never deleted and account for >95% of bytes moved;
    - SMTP delivery appends to the inbox under a short-lived zero-length
      lock file (99.9% of locks live < 0.40 s; 96% of files created and
      deleted in a day are locks);
    - interactive mail sessions: read config dot-files, lock + scan the
      whole inbox, poll with GETATTR, re-read the whole file after any
      delivery (NFS file-granularity caching), checkpoint and final
      rewrite of the mailbox (blocks die almost exclusively by
      overwrite, living roughly one mail-session: 10 min – 1 h);
    - POP checks from shared POP server hosts, whose caches are
      invalidated by deliveries, producing the bulk of read traffic;
    - mail-composer temporary files (98% under 8 KB, half living
      under a minute);
    - everything modulated by the strong CAMPUS diurnal cycle.

    All clients speak NFSv3 (over TCP on the wire path). *)

type config = {
  users : int;
  seed : int64;
  scale_note : float;  (** fraction of the paper's 10,000-user population *)
  sessions_per_user_day : float;
  deliveries_per_user_day : float;
  pop_checks_per_user_day : float;
  mailbox_median_bytes : float;
  mailbox_sigma : float;  (** lognormal shape for mailbox sizes *)
  message_median_bytes : float;
  message_sigma : float;
  rescan_interval : float;  (** mail-client poll period, seconds *)
  checkpoint_interval : float;  (** mid-session mailbox rewrite period *)
  session_mean_duration : float;
  compose_prob : float;  (** chance a poll tick starts a composition *)
  expunge_prob : float;  (** chance a session ends with deletions *)
  file_based_caching : bool;
      (** true: NFS file-granularity invalidation (reality); false: the
          §6.1.2 counterfactual where clients cache mailboxes at
          block/message granularity and fetch only new data *)
}

val default_config : config
(** 100 users ≈ 1/100 of CAMPUS, calibrated against Table 2. *)

type t

val setup :
  config ->
  engine:Nt_sim.Engine.t ->
  server:Nt_sim.Server.t ->
  sink:(Nt_trace.Record.t -> unit) ->
  t
(** Populate the server file system (home directories, dot files,
    mailboxes) and create the SMTP / POP / login client hosts. Setup
    happens outside the traced window, so it emits no records. *)

val schedule : t -> start:float -> stop:float -> unit
(** Arm the delivery, session and POP processes for the window. Run the
    engine afterwards to generate traffic. *)

val sessions_started : t -> int
val deliveries_made : t -> int
