bin/nfswlgen.mli:
