(** Throttled stderr heartbeat for long runs: records/s, current stage,
    and an ETA when the total is known. Designed for hot loops — [tick]
    is a counter bump plus a mask-gated clock check, and nothing is
    printed more often than [interval] seconds. *)

type t

val create :
  ?out:out_channel ->
  ?interval:float ->
  ?clock:(unit -> float) ->
  ?total:int ->
  label:string ->
  unit ->
  t
(** [out] defaults to [stderr]; [interval] (seconds between lines)
    defaults to [1.0]; [clock] defaults to [Unix.gettimeofday]; [total]
    enables ETA. *)

val tick : t -> ?stage:string -> int -> unit
(** [tick t n] records [n] more items processed (and optionally the
    current stage name). Cheap when called per record. *)

val set_stage : t -> string -> unit
(** Update the stage label without counting items. *)

val items : t -> int
(** Items counted so far. *)

val finish : t -> unit
(** Print a final summary line (total items, elapsed, mean rate) if
    anything was ever printed or counted. *)
