(** Record feeds: where the live monitor's input comes from.

    A feed is a pull interface that never blocks and never raises from
    [pull]: it yields a record, reports that nothing is available right
    now ([`Idle] — the service applies backoff), or reports that the
    source is finished ([`Closed]). File feeds {e tail}: at end of file
    they return [`Idle] and pick up new bytes on the next pull, they
    survive the file not existing yet, and they detect truncation
    (log rotation) and reopen from the start. Every anomaly lands in a
    counter on the feed's registry, never in an exception:

    - [mon.feed.parse_errors] — malformed trace lines / pcap frames
    - [mon.feed.reopens] — truncation-triggered reopens
    - [mon.feed.open_failures] — the path could not be opened (yet)

    File feeds expose a {e position}: the byte offset such that
    re-reading from it replays exactly the unconsumed suffix. The
    checkpoint stores it, so a kill-9 loses nothing — restore seeks and
    the records since the last checkpoint are simply read again. *)

type pull_result = [ `Record of Nt_trace.Record.t | `Idle | `Closed ]

type t

val pull : t -> pull_result

val pos : t -> int64 option
(** Checkpointable resume offset; [None] for feeds that cannot seek
    (simulator, in-memory). For the pcap tail this is the offset of the
    next undecoded pcap record — capture pairing state is rebuilt from
    the replayed suffix. *)

val seek : t -> int64 -> bool
(** Resume at a checkpointed offset; false when unsupported or the
    seek failed (the feed then restarts from its natural start). *)

val describe : t -> string
val close : t -> unit

val of_fn :
  ?describe:string ->
  ?pos:(unit -> int64 option) ->
  ?seek:(int64 -> bool) ->
  ?close:(unit -> unit) ->
  (unit -> pull_result) ->
  t
(** Wrap a pull function — how the simulator live feed plugs in. *)

val of_records : Nt_trace.Record.t Seq.t -> t
(** In-memory feed for tests; [`Closed] once exhausted. *)

val trace_tail : ?obs:Nt_obs.Obs.t -> string -> t
(** Tail a text trace (one {!Nt_trace.Record.t} line each). Only
    complete (newline-terminated) lines are consumed, so a writer
    caught mid-line never produces a parse error or a lost record. *)

val pcap_tail : ?obs:Nt_obs.Obs.t -> string -> t
(** Tail a pcap capture, decoding frames through the capture engine as
    complete pcap records arrive (both endiannesses, micro- and
    nanosecond variants). Frames held back mid-write are picked up on
    the next pull. *)

val tbin_tail : ?obs:Nt_obs.Obs.t -> string -> t
(** Tail an nttb/1 binary trace (see {!Nt_tbin}), decoding complete
    frames as they arrive. Decode failures are counted (mirrored onto
    [mon.feed.parse_errors] besides the decoder's own [tbin.*]
    counters), and the reported position replays at frame granularity:
    at-least-once, never lossy. *)
