(* Chrome trace-event export. Spans are duration Begin/End pairs (not
   Complete events) so tests can assert balance and nesting directly
   on the emitted stream; sampler readings become Counter events.
   Each track (tid) keeps its own monotone timestamp clamp and its own
   open-span stack, so per-domain streams stay well-formed no matter
   what the wall clock does.

   Worker domains never touch the shared timeline: they append
   completed spans into private [buf]s that the coordinator absorbs
   in-order at join — the same measure-there/record-here discipline as
   [Obs.span_record]. *)

type ev = { ph : char; ev_name : string; tid : int; ts : float; value : float }

type track = {
  mutable last_ts : float;  (* per-track monotone clamp *)
  mutable open_rev : string list;  (* open span names, innermost first *)
  mutable suppressed : int;  (* Begins dropped at cap whose Ends must drop too *)
}

type t = {
  ev_cap : int;
  mutable evs : ev array;
  mutable len : int;
  mutable dropped : int;
  tracks : (int, track) Hashtbl.t;
  main_tid : int;
}

let create ?(cap = 200_000) () =
  {
    ev_cap = max 16 cap;
    evs = [||];
    len = 0;
    dropped = 0;
    tracks = Hashtbl.create 8;
    main_tid = (Domain.self () :> int);
  }

let track t tid =
  match Hashtbl.find_opt t.tracks tid with
  | Some tr -> tr
  | None ->
      let tr = { last_ts = neg_infinity; open_rev = []; suppressed = 0 } in
      Hashtbl.replace t.tracks tid tr;
      tr

let clamp tr ts =
  let ts = if ts < tr.last_ts then tr.last_ts else ts in
  tr.last_ts <- ts;
  ts

let push t ev =
  if t.len >= Array.length t.evs then begin
    let n = max 256 (2 * Array.length t.evs) in
    let n = min n (t.ev_cap + 64) in
    let evs = Array.make (max n (t.len + 1)) ev in
    Array.blit t.evs 0 evs 0 t.len;
    t.evs <- evs
  end;
  t.evs.(t.len) <- ev;
  t.len <- t.len + 1

let span_begin t ~tid ~name ~ts =
  let tr = track t tid in
  if t.len >= t.ev_cap then begin
    (* Past the cap whole spans are dropped, never half of one: this
       Begin goes, and [span_end] must swallow the matching End. *)
    tr.suppressed <- tr.suppressed + 1;
    t.dropped <- t.dropped + 1
  end
  else begin
    let ts = clamp tr ts in
    tr.open_rev <- name :: tr.open_rev;
    push t { ph = 'B'; ev_name = name; tid; ts; value = 0. }
  end

let span_end t ~tid ~name ~ts =
  let tr = track t tid in
  if tr.suppressed > 0 then begin
    tr.suppressed <- tr.suppressed - 1;
    t.dropped <- t.dropped + 1
  end
  else
    match tr.open_rev with
    | [] -> ()  (* unmatched close: ignore, as Obs does *)
    | top :: rest ->
        let ts = clamp tr ts in
        tr.open_rev <- rest;
        ignore (name : string);
        (* Ends always emit (even at cap) so already-emitted Begins
           stay balanced; the excess is bounded by open-span depth. *)
        push t { ph = 'E'; ev_name = top; tid; ts; value = 0. }

let counter t ?tid ~name ~ts ~value () =
  let tid = match tid with Some i -> i | None -> t.main_tid in
  if t.len >= t.ev_cap then t.dropped <- t.dropped + 1
  else begin
    let tr = track t tid in
    let ts = clamp tr ts in
    push t { ph = 'C'; ev_name = name; tid; ts; value }
  end

let span t ~tid ~name ~t0 ~t1 =
  span_begin t ~tid ~name ~ts:t0;
  span_end t ~tid ~name ~ts:(Float.max t0 t1)

let reanchor t ~ts =
  (* Close every open span at its track's current clamp, then reopen it
     (outermost first) at the new anchor: downtime is attributed to no
     span and balance and nesting survive. Unlike [Obs.reanchor] the
     per-track clamp is NOT released down — a timeline's events must
     stay monotone within a track or reopened spans would overlap the
     intervals already emitted before the restore. *)
  Hashtbl.iter
    (fun tid tr ->
      let opened = tr.open_rev in
      List.iter (fun name -> span_end t ~tid ~name ~ts:tr.last_ts) opened;
      List.iter (fun name -> span_begin t ~tid ~name ~ts) (List.rev opened))
    t.tracks

let obs_sink ?tid t =
  let tid = match tid with Some i -> i | None -> t.main_tid in
  {
    Obs.on_span_open = (fun path ts -> span_begin t ~tid ~name:path ~ts);
    on_span_close = (fun path ts -> span_end t ~tid ~name:path ~ts);
    on_reanchor = (fun ts -> reanchor t ~ts);
  }

let attach ?tid t obs = Obs.set_trace_sink obs (Some (obs_sink ?tid t))

let events t = t.len
let dropped t = t.dropped
let tracks_count t = Hashtbl.length t.tracks

(* --- worker-side buffers --- *)

type buf = { mutable b_spans : (string * int * float * float) array; mutable b_len : int }

let buf () = { b_spans = [||]; b_len = 0 }

let buf_add b ~name ~t0 ~t1 =
  if b.b_len >= Array.length b.b_spans then begin
    let n = max 16 (2 * Array.length b.b_spans) in
    let spans = Array.make n ("", 0, 0., 0.) in
    Array.blit b.b_spans 0 spans 0 b.b_len;
    b.b_spans <- spans
  end;
  b.b_spans.(b.b_len) <- (name, (Domain.self () :> int), t0, t1);
  b.b_len <- b.b_len + 1

let absorb t b =
  for i = 0 to b.b_len - 1 do
    let name, tid, t0, t1 = b.b_spans.(i) in
    span t ~tid ~name ~t0 ~t1
  done

(* --- export --- *)

let json_escape s =
  let b = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | c when Char.code c < 0x20 -> Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let to_json t =
  let base = ref infinity in
  for i = 0 to t.len - 1 do
    if t.evs.(i).ts < !base then base := t.evs.(i).ts
  done;
  let base = if Float.is_finite !base then !base else 0. in
  let pid = Unix.getpid () in
  let b = Buffer.create (256 + (t.len * 96)) in
  Buffer.add_string b "{\"traceEvents\": [";
  for i = 0 to t.len - 1 do
    let e = t.evs.(i) in
    Buffer.add_string b (if i = 0 then "\n" else ",\n");
    let us = (e.ts -. base) *. 1e6 in
    let us = if us < 0. then 0. else us in
    match e.ph with
    | 'C' ->
        Buffer.add_string b
          (Printf.sprintf
             "  {\"name\": \"%s\", \"cat\": \"nt\", \"ph\": \"C\", \"ts\": %.3f, \"pid\": %d, \
              \"tid\": %d, \"args\": {\"value\": %.0f}}"
             (json_escape e.ev_name) us pid e.tid e.value)
    | ph ->
        Buffer.add_string b
          (Printf.sprintf
             "  {\"name\": \"%s\", \"cat\": \"nt\", \"ph\": \"%c\", \"ts\": %.3f, \"pid\": %d, \
              \"tid\": %d}"
             (json_escape e.ev_name) ph us pid e.tid)
  done;
  Buffer.add_string b
    (Printf.sprintf "\n], \"displayTimeUnit\": \"ms\", \"otherData\": {\"dropped\": %d}}\n"
       t.dropped);
  Buffer.contents b

let write_file t path =
  let oc = open_out path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () -> output_string oc (to_json t))
