(** Shard planning: cutting a time-sorted record array into contiguous
    slices for the map-merge driver.

    A plan is a function of the input alone — never of the worker
    count — so the same trace always produces the same shards, the same
    merge sequence and therefore byte-identical reports whatever
    [--jobs] says. Slices tile the input: shard 0 becomes the root
    accumulator (full sequential semantics), later shards run in shard
    mode and merge back in time order. *)

type slice = { off : int; len : int }

val plan : records_per_shard:int -> int -> slice array
(** [plan ~records_per_shard n] cuts [0, n) into bounded-size
    contiguous slices; the last one may be short. Empty input gives an
    empty plan. Raises [Invalid_argument] on a non-positive bound. *)

val plan_by_time : window:float -> Nt_trace.Record.t array -> slice array
(** Cut at fixed wall-clock boundaries ([window] seconds from the
    first record's time) instead of fixed record counts. Windows in
    which nothing happened produce no shard, so slices are never
    empty — an empty shard would otherwise still be merge-neutral, but
    there is no point scheduling it. *)

val check : total:int -> slice array -> unit
(** Validate that slices exactly tile [0, total) in order; raises
    [Invalid_argument] otherwise. The driver runs this on every plan it
    is handed, so a bad hand-built plan fails fast instead of silently
    dropping records. *)
