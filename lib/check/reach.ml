type t = { reachable : (string, unit) Hashtbl.t; missing_roots : string list }

let compute ~roots (units : Loader.unit_info list) =
  let imports = Hashtbl.create 64 in
  List.iter
    (fun (u : Loader.unit_info) ->
      if Loader.is_impl u then
        match Hashtbl.find_opt imports u.name with
        | Some prev -> Hashtbl.replace imports u.name (u.imports @ prev)
        | None -> Hashtbl.add imports u.name u.imports)
    units;
  let known = Hashtbl.create 64 in
  List.iter (fun (u : Loader.unit_info) -> Hashtbl.replace known u.name ()) units;
  let reachable = Hashtbl.create 64 in
  let rec visit name =
    if Hashtbl.mem known name && not (Hashtbl.mem reachable name) then begin
      Hashtbl.add reachable name ();
      match Hashtbl.find_opt imports name with
      | Some deps -> List.iter visit deps
      | None -> ()
    end
  in
  let missing_roots =
    List.filter
      (fun root ->
        let matches =
          List.filter
            (fun (u : Loader.unit_info) -> Syntax.unit_matches ~unit:u.name root)
            units
        in
        List.iter (fun (u : Loader.unit_info) -> visit u.name) matches;
        matches = [])
      roots
  in
  { reachable; missing_roots }

let missing_roots t = t.missing_roots
let mem t name = Hashtbl.mem t.reachable name
let size t = Hashtbl.length t.reachable

let to_list t =
  List.sort String.compare (Hashtbl.fold (fun k () acc -> k :: acc) t.reachable [])
