lib/core/pipeline.mli: Nt_net Nt_trace Nt_workload
