(** The exn-escape rule over the Exnflow fixpoint.

    [check sink ~roots ~units ~config_finding] resolves the root
    patterns (exact display names or ["Prefix.*"] globs over exported
    bindings), empties the summaries of [@@nt.raise_ok]-annotated
    bindings (counting each reachable one through the suppression
    census), solves the fixpoint, emits one finding per root whose
    residual may-raise set is non-empty, and returns the per-function
    report: [(display, file, line, may-raise)] rows for every binding
    reachable from a root, sorted — [["*"]] marks [Top]. *)

val check :
  Finding.sink ->
  roots:string list ->
  units:Loader.unit_info list ->
  config_finding:(string -> unit) ->
  (string * string * int * string list) list
