(** Calendar helpers for the simulated trace period.

    All of the paper's in-depth analyses use the week of Sunday
    10/21/2001 through Saturday 10/27/2001; this module fixes that epoch
    and provides the day/hour arithmetic the analyses need. Times are
    float seconds since the Unix epoch, the same representation used in
    trace records. *)

val week_start : float
(** 00:00 local on Sunday 2001-10-21 (treated as UTC throughout). *)

val week_end : float
(** 00:00 on Sunday 2001-10-28, i.e. [week_start +. 7 days]. *)

val seconds_per_hour : float
val seconds_per_day : float

type day = Sun | Mon | Tue | Wed | Thu | Fri | Sat

val day_to_string : day -> string
val day_of_time : float -> day
val hour_of_time : float -> int
(** Hour of day, 0–23. *)

val hour_index : float -> int
(** Hours elapsed since [week_start]; 0–167 within the trace week. *)

val is_weekday : day -> bool

val is_peak : float -> bool
(** The paper's peak window: 9am–6pm, Monday through Friday. *)

val time_of : day:day -> hour:int -> minute:int -> float
(** Absolute time within the trace week. *)

val format : float -> string
(** e.g. ["Wed 14:05:09.123"]; used in trace dumps and bench output. *)
