type severity = Info | Warn | Error

let severity_to_string = function Info -> "info" | Warn -> "warn" | Error -> "error"
let severity_rank = function Info -> 0 | Warn -> 1 | Error -> 2
let severity_compare a b = compare (severity_rank a) (severity_rank b)

type family = Protocol | Anonymization | Hygiene

let family_to_string = function
  | Protocol -> "protocol"
  | Anonymization -> "anonymization"
  | Hygiene -> "hygiene"

type t = { id : string; family : family; severity : severity; doc : string }

let rule id family severity doc = { id; family; severity; doc }

(* --- protocol --- *)

let unanswered_call =
  rule "unanswered-call" Protocol Warn
    "call has no reply: lost at the monitor or on the wire"

let duplicate_xid =
  rule "duplicate-xid" Protocol Warn
    "(client, XID) pair reused within the XID window"

let fh_use_after_remove =
  rule "fh-use-after-remove" Protocol Error
    "successful operation on a handle after its last link was removed"

let fh_before_introduction =
  rule "fh-before-introduction" Protocol Warn
    "READ/WRITE/COMMIT on a handle the trace never introduced"

let offset_beyond_size =
  rule "offset-beyond-size" Protocol Error
    "successful I/O extends past the size attested by the same reply"

let reply_before_call =
  rule "reply-before-call" Protocol Error "reply timestamped before its call"

let non_monotonic_time =
  rule "non-monotonic-time" Protocol Warn
    "call time runs backwards by more than the reorder window"

let bad_io_range =
  rule "bad-io-range" Protocol Error "negative offset or count in an I/O call"

(* --- anonymization --- *)

let raw_ip =
  rule "raw-ip" Anonymization Error
    "address outside the anonymizer's private pool"

let unmapped_id =
  rule "unmapped-id" Anonymization Error
    "UID/GID neither preserved nor in the anonymizer's mapped range"

let name_residue =
  rule "name-residue" Anonymization Error
    "name component does not parse as anonymizer output"

let dictionary_word =
  rule "dictionary-word" Anonymization Error
    "name contains a dictionary word"

(* --- capture hygiene --- *)

let loss_accounting =
  rule "loss-accounting" Hygiene Error
    "capture counters violate their conservation laws"

let capture_loss =
  rule "capture-loss" Hygiene Warn
    "capture saw loss: orphan replies, lost replies or TCP gaps"

let frame_damage =
  rule "frame-damage" Hygiene Warn
    "undecodable or corrupt frames, or RPC decode errors"

let salvage_gap =
  rule "salvage-gap" Hygiene Warn
    "pcap bytes skipped without a salvaged record or truncated-tail flag"

let all =
  [
    unanswered_call;
    duplicate_xid;
    fh_use_after_remove;
    fh_before_introduction;
    offset_beyond_size;
    reply_before_call;
    non_monotonic_time;
    bad_io_range;
    raw_ip;
    unmapped_id;
    name_residue;
    dictionary_word;
    loss_accounting;
    capture_loss;
    frame_damage;
    salvage_gap;
  ]

let find id = List.find_opt (fun r -> r.id = id) all
