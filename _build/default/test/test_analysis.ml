(* Analysis tests: crafted access streams with known answers for every
   analysis the paper's evaluation uses. *)

module Io_log = Nt_analysis.Io_log
module Runs = Nt_analysis.Runs
module Seqmetric = Nt_analysis.Seqmetric
module Reorder = Nt_analysis.Reorder
module Lifetime = Nt_analysis.Lifetime
module Hourly = Nt_analysis.Hourly
module Names = Nt_analysis.Names
module Summary = Nt_analysis.Summary
module Record = Nt_trace.Record
module Ops = Nt_nfs.Ops
module Types = Nt_nfs.Types
module Fh = Nt_nfs.Fh
module Ip = Nt_net.Ip_addr
module Tw = Nt_util.Trace_week

let dir_fh = Fh.make ~fsid:1 ~fileid:2
let file_fh = Fh.make ~fsid:1 ~fileid:3

let record ?(time = Tw.week_start) ?(result = None) call : Record.t =
  {
    time;
    reply_time = Some (time +. 0.001);
    client = Ip.v 10 0 0 1;
    server = Ip.v 10 0 0 2;
    version = 3;
    xid = 1;
    uid = 1;
    gid = 1;
    call;
    result;
  }

let read_rec ?(fh = file_fh) ~time ~offset ~count ~size ~eof () =
  record ~time
    ~result:(Some (Ok (Ops.R_read { attr = Some { Types.default_fattr with size = Int64.of_int size }; count; eof })))
    (Ops.Read { fh; offset = Int64.of_int offset; count })

let write_rec ?(fh = file_fh) ~time ~offset ~count ~size () =
  record ~time
    ~result:
      (Some
         (Ok
            (Ops.R_write
               {
                 count;
                 committed = Types.File_sync;
                 attr = Some { Types.default_fattr with size = Int64.of_int size };
               })))
    (Ops.Write { fh; offset = Int64.of_int offset; count; stable = Types.File_sync })

(* --- io_log --- *)

let test_io_log_collects () =
  let log = Io_log.create () in
  Io_log.observe log (read_rec ~time:1. ~offset:0 ~count:100 ~size:1000 ~eof:false ());
  Io_log.observe log (write_rec ~time:2. ~offset:100 ~count:50 ~size:1000 ());
  Io_log.observe log (record (Ops.Getattr file_fh)) (* ignored *);
  Alcotest.(check int) "two accesses" 2 (Io_log.accesses log);
  Alcotest.(check int) "one file" 1 (Io_log.files log)

let test_io_log_lost_reply_uses_call () =
  let log = Io_log.create () in
  Io_log.observe log (record (Ops.Read { fh = file_fh; offset = 0L; count = 4096 }));
  Alcotest.(check int) "requested count assumed" 1 (Io_log.accesses log)

let access ?(read = true) ?(eof = false) ?(size = 1 lsl 20) at offset count =
  { Io_log.at; offset; count; is_read = read; at_eof = eof; file_size = size }

let test_sort_window_fixes_swap () =
  let accesses =
    [| access 0.000 0 8192; access 0.001 16384 8192; access 0.002 8192 8192 |]
  in
  let sorted, swaps = Io_log.sort_window 0.01 accesses in
  Alcotest.(check int) "one swap" 1 swaps;
  Alcotest.(check (list int)) "ascending offsets" [ 0; 8192; 16384 ]
    (Array.to_list (Array.map (fun (a : Io_log.access) -> a.offset) sorted))

let test_sort_window_respects_window () =
  let accesses = [| access 0.0 8192 8192; access 5.0 0 8192 |] in
  let _, swaps = Io_log.sort_window 0.01 accesses in
  Alcotest.(check int) "distant accesses untouched" 0 swaps

let test_sort_window_zero_is_identity () =
  let accesses = [| access 0.0 8192 8192; access 0.001 0 8192 |] in
  let sorted, swaps = Io_log.sort_window 0. accesses in
  Alcotest.(check int) "no swaps" 0 swaps;
  Alcotest.(check int) "unchanged" 8192 sorted.(0).Io_log.offset

(* --- runs --- *)

let test_split_on_eof () =
  let accesses = [| access ~eof:true 0. 0 100; access 1. 0 100 |] in
  Alcotest.(check int) "eof splits" 2 (List.length (Runs.split accesses))

let test_split_on_gap () =
  let accesses = [| access 0. 0 100; access 31. 100 100; access 32. 200 100 |] in
  Alcotest.(check int) "30s gap splits" 2 (List.length (Runs.split accesses))

let test_split_contiguous () =
  let accesses = Array.init 10 (fun i -> access (float_of_int i) (i * 8192) 8192) in
  Alcotest.(check int) "one run" 1 (List.length (Runs.split accesses))

let test_classify_sequential () =
  let run = Array.init 5 (fun i -> access (float_of_int i) (8192 * i) 8192) in
  Alcotest.(check string) "sequential" "sequential"
    (Runs.pattern_to_string (Runs.classify ~jump_blocks:1 run))

let test_classify_entire () =
  let size = 5 * 8192 in
  let run = Array.init 5 (fun i -> access ~size (float_of_int i) (8192 * i) 8192) in
  Alcotest.(check string) "entire" "entire"
    (Runs.pattern_to_string (Runs.classify ~jump_blocks:1 run))

let test_classify_random () =
  let run = [| access 0. 0 8192; access 1. (100 * 8192) 8192; access 2. 8192 8192 |] in
  Alcotest.(check string) "random" "random"
    (Runs.pattern_to_string (Runs.classify ~jump_blocks:1 run))

let test_classify_small_jump_tolerance () =
  (* A 3-block forward jump: random under the strict rule, sequential
     with the paper's 10-block tolerance. *)
  let run = [| access 0. 0 8192; access 1. (4 * 8192) 8192 |] in
  Alcotest.(check string) "strict random" "random"
    (Runs.pattern_to_string (Runs.classify ~jump_blocks:1 run));
  Alcotest.(check string) "tolerant sequential" "sequential"
    (Runs.pattern_to_string (Runs.classify ~jump_blocks:10 run))

let test_classify_rounding () =
  (* The paper's example: 0k(8k) 8k(8k) 16k(7k) 24k(8k) is sequential
     despite the missing 1k. *)
  let run =
    [| access 0. 0 8192; access 1. 8192 8192; access 2. 16384 7168; access 3. 24576 8192 |]
  in
  Alcotest.(check string) "paper example sequential" "sequential"
    (Runs.pattern_to_string (Runs.classify ~jump_blocks:1 run))

let test_classify_singleton () =
  let whole = [| access ~size:100 0. 0 100 |] in
  Alcotest.(check string) "whole singleton entire" "entire"
    (Runs.pattern_to_string (Runs.classify ~jump_blocks:1 whole));
  let partial = [| access ~size:100_000 0. 0 100 |] in
  Alcotest.(check string) "partial singleton sequential" "sequential"
    (Runs.pattern_to_string (Runs.classify ~jump_blocks:1 partial))

let test_table3_percentages () =
  let log = Io_log.create () in
  (* Two read runs on one file (split by eof), one write run on another. *)
  let f2 = Fh.make ~fsid:1 ~fileid:99 in
  Io_log.observe log (read_rec ~time:1. ~offset:0 ~count:100 ~size:100 ~eof:true ());
  Io_log.observe log (read_rec ~time:2. ~offset:0 ~count:100 ~size:100 ~eof:true ());
  Io_log.observe log (write_rec ~fh:f2 ~time:1. ~offset:0 ~count:100 ~size:100 ());
  let t = Runs.table3 (Runs.analyze ~jump_blocks:1 log) in
  Alcotest.(check int) "three runs" 3 t.total_runs;
  Alcotest.(check (float 1e-6) "reads 66.7%") (200. /. 3.) t.reads_pct;
  Alcotest.(check (float 1e-6) "writes 33.3%") (100. /. 3.) t.writes_pct;
  Alcotest.(check (float 1e-6) "read runs entire") 100. t.read.entire_pct

let test_by_file_size_cumulative () =
  let log = Io_log.create () in
  Io_log.observe log (read_rec ~time:1. ~offset:0 ~count:1000 ~size:1000 ~eof:true ());
  let c = Runs.by_file_size (Runs.analyze ~jump_blocks:1 log) in
  let last = Array.length c.total - 1 in
  Alcotest.(check (float 1e-6) "total reaches 100") 100. c.total.(last);
  Alcotest.(check bool) "monotone" true
    (Array.for_all Fun.id (Array.init last (fun i -> c.total.(i) <= c.total.(i + 1))))

(* --- sequentiality metric --- *)

let test_metric_sequential_run () =
  let run = Array.init 10 (fun i -> access (float_of_int i) (i * 8192) 8192) in
  Alcotest.(check (float 1e-9) "fully sequential") 1.0 (Seqmetric.run_metric ~c:1 run)

let test_metric_alternating () =
  (* Every second transition is a long seek: metric ~0.5 with c=10. *)
  let run =
    Array.init 10 (fun i ->
        let base = if i mod 2 = 0 then i / 2 * 8192 else 1000 * 8192 in
        access (float_of_int i) base 8192)
  in
  let m = Seqmetric.run_metric ~c:10 run in
  Alcotest.(check bool) "metric near 0" true (m < 0.4)

let test_metric_small_jumps () =
  (* Jumps of 3 blocks: strict fails, c=10 passes. *)
  let run = Array.init 5 (fun i -> access (float_of_int i) (i * 4 * 8192) 8192) in
  Alcotest.(check (float 1e-9) "c=10 tolerant") 1.0 (Seqmetric.run_metric ~c:10 run);
  Alcotest.(check (float 1e-9) "strict zero") 0.0 (Seqmetric.run_metric ~c:1 run)

let test_metric_singleton () =
  Alcotest.(check (float 1e-9) "singleton 1.0") 1.0
    (Seqmetric.run_metric ~c:1 [| access 0. 0 100 |])

(* --- reorder --- *)

let test_swap_percentages_monotone () =
  let log = Io_log.create () in
  let rng = Nt_util.Prng.create 3L in
  let records =
    List.init 500 (fun i ->
        let jitter = if Nt_util.Prng.chance rng 0.1 then 0.004 else 0. in
        read_rec
          ~time:(Tw.week_start +. (float_of_int i *. 0.001) +. jitter)
          ~offset:(i * 8192) ~count:8192 ~size:(500 * 8192) ~eof:(i = 499) ())
    (* The monitor sees packets in wire-time order. *)
    |> List.sort (fun (a : Record.t) (b : Record.t) -> Float.compare a.time b.time)
  in
  List.iter (Io_log.observe log) records;
  let pts = Reorder.swap_percentages log ~windows_ms:[ 0.; 2.; 5.; 10. ] in
  let values = List.map snd pts in
  (match values with
  | [ v0; v2; v5; v10 ] ->
      Alcotest.(check (float 1e-9) "zero window, zero swaps") 0. v0;
      Alcotest.(check bool) "grows with window" true (v2 <= v5 +. 1e-9 && v5 <= v10 +. 1e-9);
      Alcotest.(check bool) "some swaps found" true (v10 > 0.)
  | _ -> Alcotest.fail "expected four points");
  Alcotest.(check bool) "out of order fraction positive" true
    (Reorder.out_of_order_fraction log > 0.)

let test_knee_detection () =
  let points = [ (0., 0.); (1., 5.); (2., 9.); (5., 10.); (10., 10.1); (20., 10.15) ] in
  Alcotest.(check (float 1e-9) "knee at plateau start") 5. (Reorder.knee points)

(* --- lifetime --- *)

let lt_config = { (Lifetime.config ~phase1_start:1000.) with phase1_len = 1000.; phase2_len = 1000. }

let test_lifetime_overwrite () =
  let t = Lifetime.create lt_config in
  Lifetime.observe t (write_rec ~time:1100. ~offset:0 ~count:8192 ~size:8192 ());
  Lifetime.observe t (write_rec ~time:1200. ~offset:0 ~count:8192 ~size:8192 ());
  let r = Lifetime.result t in
  Alcotest.(check int) "two births" 2 r.births;
  Alcotest.(check int) "one death" 1 r.deaths;
  Alcotest.(check (float 1e-6) "overwrite 100%") 100. r.deaths_overwrite_pct;
  Alcotest.(check (float 1e-6) "lifetime 100s in cdf") 1.0 (Lifetime.cdf_at r 120.);
  Alcotest.(check (float 1e-6) "not before 100s") 0.0 (Lifetime.cdf_at r 60.)

let test_lifetime_truncate () =
  let t = Lifetime.create lt_config in
  Lifetime.observe t (write_rec ~time:1100. ~offset:0 ~count:16384 ~size:16384 ());
  Lifetime.observe t
    (record ~time:1300.
       (Ops.Setattr { fh = file_fh; attrs = { Types.empty_sattr with set_size = Some 0L } }));
  let r = Lifetime.result t in
  Alcotest.(check int) "both blocks die" 2 r.deaths;
  Alcotest.(check (float 1e-6) "truncate 100%") 100. r.deaths_truncate_pct

let test_lifetime_deletion () =
  let t = Lifetime.create lt_config in
  (* Bind the name so the remove can be resolved. *)
  Lifetime.observe t
    (record ~time:1050.
       ~result:(Some (Ok (Ops.R_create { fh = Some file_fh; attr = None })))
       (Ops.Create { dir = dir_fh; name = "tmp"; mode = 0o600; exclusive = false }));
  Lifetime.observe t (write_rec ~time:1100. ~offset:0 ~count:8192 ~size:8192 ());
  Lifetime.observe t
    (record ~time:1400. ~result:(Some (Ok Ops.R_empty)) (Ops.Remove { dir = dir_fh; name = "tmp" }));
  let r = Lifetime.result t in
  Alcotest.(check int) "one death" 1 r.deaths;
  Alcotest.(check (float 1e-6) "deletion 100%") 100. r.deaths_deletion_pct

let test_lifetime_rename_kills_target () =
  let t = Lifetime.create lt_config in
  let f2 = Fh.make ~fsid:1 ~fileid:77 in
  Lifetime.observe t
    (record ~time:1010.
       ~result:(Some (Ok (Ops.R_create { fh = Some file_fh; attr = None })))
       (Ops.Create { dir = dir_fh; name = "target"; mode = 0o644; exclusive = false }));
  Lifetime.observe t (write_rec ~time:1050. ~offset:0 ~count:8192 ~size:8192 ());
  Lifetime.observe t
    (record ~time:1060.
       ~result:(Some (Ok (Ops.R_create { fh = Some f2; attr = None })))
       (Ops.Create { dir = dir_fh; name = "tmp"; mode = 0o644; exclusive = false }));
  Lifetime.observe t (write_rec ~fh:f2 ~time:1070. ~offset:0 ~count:8192 ~size:8192 ());
  Lifetime.observe t
    (record ~time:1100. ~result:(Some (Ok Ops.R_empty))
       (Ops.Rename { from_dir = dir_fh; from_name = "tmp"; to_dir = dir_fh; to_name = "target" }));
  let r = Lifetime.result t in
  Alcotest.(check int) "old target died" 1 r.deaths;
  Alcotest.(check (float 1e-6) "by deletion") 100. r.deaths_deletion_pct

let test_lifetime_extension_births () =
  let t = Lifetime.create lt_config in
  (* Write far past EOF: the skipped blocks are extension births. *)
  Lifetime.observe t (write_rec ~time:1100. ~offset:0 ~count:8192 ~size:8192 ());
  Lifetime.observe t (write_rec ~time:1200. ~offset:(8192 * 5) ~count:8192 ~size:(8192 * 6) ());
  let r = Lifetime.result t in
  Alcotest.(check int) "births incl. gap" 6 r.births;
  Alcotest.(check bool) "extensions counted" true (r.births_extension_pct > 0.)

let test_lifetime_pre_existing_untracked () =
  let t = Lifetime.create lt_config in
  (* The file's size is learned from attrs before any write: those
     blocks are live but uncountable. *)
  Lifetime.observe t (read_rec ~time:1050. ~offset:0 ~count:8192 ~size:65536 ~eof:false ());
  Lifetime.observe t (write_rec ~time:1100. ~offset:0 ~count:8192 ~size:65536 ());
  let r = Lifetime.result t in
  Alcotest.(check int) "rebirth counted" 1 r.births;
  Alcotest.(check int) "untracked death not counted" 0 r.deaths

let test_lifetime_phase2_deaths_only () =
  let t = Lifetime.create lt_config in
  Lifetime.observe t (write_rec ~time:1500. ~offset:0 ~count:8192 ~size:8192 ());
  (* Phase 2 write: kills the phase-1 block but its own birth is not
     recorded. *)
  Lifetime.observe t (write_rec ~time:2500. ~offset:0 ~count:8192 ~size:8192 ());
  Lifetime.observe t (write_rec ~time:2600. ~offset:0 ~count:8192 ~size:8192 ());
  let r = Lifetime.result t in
  Alcotest.(check int) "only phase-1 births" 1 r.births;
  Alcotest.(check int) "phase-1 block's death counted once" 1 r.deaths

let test_lifetime_end_surplus () =
  let t = Lifetime.create lt_config in
  Lifetime.observe t (write_rec ~time:1500. ~offset:0 ~count:8192 ~size:8192 ());
  let r = Lifetime.result t in
  Alcotest.(check int) "survivor in surplus" 1 r.end_surplus;
  Alcotest.(check (float 1e-6) "surplus pct") 100. r.end_surplus_pct

(* --- hourly --- *)

let test_hourly_bucketing () =
  let h = Hourly.create () in
  Hourly.observe h (read_rec ~time:(Tw.week_start +. 100.) ~offset:0 ~count:8192 ~size:8192 ~eof:true ());
  Hourly.observe h (read_rec ~time:(Tw.week_start +. 200.) ~offset:0 ~count:8192 ~size:8192 ~eof:true ());
  Hourly.observe h (write_rec ~time:(Tw.week_start +. 3700.) ~offset:0 ~count:100 ~size:100 ());
  match Hourly.series h with
  | [ p0; p1 ] ->
      Alcotest.(check int) "hour 0 reads" 2 p0.reads;
      Alcotest.(check int) "hour 1 writes" 1 p1.writes;
      Alcotest.(check (float 1e-6) "bytes") 16384. p0.bytes_read
  | other -> Alcotest.failf "expected 2 points, got %d" (List.length other)

let test_hourly_peak_variance () =
  let h = Hourly.create () in
  (* Constant 100 ops in each peak hour, noisy elsewhere. *)
  List.iter
    (fun day ->
      for hour = 0 to 23 do
        let n = if hour >= 9 && hour < 18 then 100 else 10 * (1 + (hour mod 3)) in
        for i = 1 to n do
          let time = Tw.time_of ~day ~hour ~minute:(i mod 60) in
          Hourly.observe h (record ~time (Ops.Getattr file_fh))
        done
      done)
    Tw.[ Mon; Tue ];
  let peak = Hourly.peak_hours h in
  Alcotest.(check (float 1e-6) "flat peak hours") 0. peak.total_ops_k.stddev_pct;
  Alcotest.(check bool) "all-hours vary" true ((Hourly.all_hours h).total_ops_k.stddev_pct > 0.)

(* --- names --- *)

let test_categorize () =
  let open Names in
  let cases =
    [
      (".inbox.lock", Lock); ("lock", Lock); (".inbox", Mailbox); ("mbox", Mailbox);
      ("saved-01", Mailbox); ("pine-tmp-0001-002", Mail_composer); (".pinerc", Dot_file);
      ("Applet_42_Extern", Applet); ("cache00af01", Browser_cache); ("#main.c#", Autosave);
      ("main.c~", Backup); ("main.c,v", Rcs_archive); ("main.c", Source); ("Makefile", Source);
      ("main.o", Object_file); ("run.log", Log_index); (".history", Log_index);
      ("dataset-1.dat", Dataset); ("ld-123.tmp", Temp_build); ("prog", Other);
    ]
  in
  List.iter
    (fun (name, expected) ->
      Alcotest.(check string) name (category_to_string expected) (category_to_string (categorize name)))
    cases

let test_names_lifecycle () =
  let n = Names.create () in
  (* create, write, delete a lock file. *)
  let lock_fh = Fh.make ~fsid:1 ~fileid:50 in
  Names.observe n
    (record ~time:1000.
       ~result:(Some (Ok (Ops.R_create { fh = Some lock_fh; attr = None })))
       (Ops.Create { dir = dir_fh; name = "x.lock"; mode = 0o600; exclusive = false }));
  Names.observe n
    (record ~time:1000.2 ~result:(Some (Ok Ops.R_empty)) (Ops.Remove { dir = dir_fh; name = "x.lock" }));
  Alcotest.(check int) "created+deleted" 1 (Names.created_deleted_total n);
  Alcotest.(check (float 1e-6) "all locks") 100. (Names.lock_created_deleted_pct n);
  Alcotest.(check (float 1e-6) "lifetime under 0.4s") 1.0 (Names.lock_lifetime_under n 0.4)

let test_names_byte_share_real () =
  let n = Names.create () in
  let inbox_fh = Fh.make ~fsid:1 ~fileid:60 in
  Names.observe n
    (record ~time:1.
       ~result:(Some (Ok (Ops.R_lookup { fh = inbox_fh; obj = None; dir = None })))
       (Ops.Lookup { dir = dir_fh; name = ".inbox" }));
  Names.observe n (read_rec ~fh:inbox_fh ~time:2. ~offset:0 ~count:8192 ~size:8192 ~eof:true ());
  Alcotest.(check (float 1e-6) "mailbox owns all bytes") 1.0 (Names.byte_share n Names.Mailbox)

let test_names_prediction () =
  let n = Names.create () in
  (* Ten locks spread over the window: identical behaviour -> perfect
     prediction. *)
  for i = 0 to 9 do
    let fh = Fh.make ~fsid:1 ~fileid:(100 + i) in
    let t0 = 1000. +. (float_of_int i *. 100.) in
    Names.observe n
      (record ~time:t0
         ~result:(Some (Ok (Ops.R_create { fh = Some fh; attr = None })))
         (Ops.Create { dir = dir_fh; name = Printf.sprintf "f%d.lock" i; mode = 0o600; exclusive = false }));
    Names.observe n
      (record ~time:(t0 +. 0.1) ~result:(Some (Ok Ops.R_empty))
         (Ops.Remove { dir = dir_fh; name = Printf.sprintf "f%d.lock" i }))
  done;
  let p = Names.predict n in
  Alcotest.(check bool) "tested some" true (p.tested > 0);
  Alcotest.(check (float 1e-6) "size predicted") 1.0 p.size_accuracy;
  Alcotest.(check (float 1e-6) "lifetime predicted") 1.0 p.lifetime_accuracy

(* --- nvram --- *)

module Nvram = Nt_analysis.Nvram

let nvram_cfg delay = { Nvram.capacity_bytes = 1 lsl 20; flush_delay = delay; block = 8192 }

let test_nvram_absorbs_fast_overwrite () =
  let t = Nvram.create (nvram_cfg 10.) in
  Nvram.observe t (write_rec ~time:100.0 ~offset:0 ~count:8192 ~size:8192 ());
  Nvram.observe t (write_rec ~time:100.5 ~offset:0 ~count:8192 ~size:8192 ());
  let r = Nvram.result t in
  Alcotest.(check int) "two versions" 2 r.block_writes;
  Alcotest.(check int) "first absorbed" 1 r.absorbed;
  Alcotest.(check int) "second flushed at end" 1 r.disk_writes

let test_nvram_flushes_after_delay () =
  let t = Nvram.create (nvram_cfg 10.) in
  Nvram.observe t (write_rec ~time:100. ~offset:0 ~count:8192 ~size:8192 ());
  (* Second write arrives after the flush deadline: no absorption. *)
  Nvram.observe t (write_rec ~time:200. ~offset:0 ~count:8192 ~size:8192 ());
  let r = Nvram.result t in
  Alcotest.(check int) "nothing absorbed" 0 r.absorbed;
  Alcotest.(check int) "both reach disk" 2 r.disk_writes

let test_nvram_remove_absorbs () =
  let t = Nvram.create (nvram_cfg 60.) in
  Nvram.observe t
    (record ~time:100.
       ~result:(Some (Ok (Ops.R_create { fh = Some file_fh; attr = None })))
       (Ops.Create { dir = dir_fh; name = "tmp"; mode = 0o600; exclusive = false }));
  Nvram.observe t (write_rec ~time:101. ~offset:0 ~count:16384 ~size:16384 ());
  Nvram.observe t
    (record ~time:102. ~result:(Some (Ok Ops.R_empty)) (Ops.Remove { dir = dir_fh; name = "tmp" }));
  let r = Nvram.result t in
  Alcotest.(check int) "deleted blocks absorbed" 2 r.absorbed;
  Alcotest.(check int) "nothing reaches disk" 0 r.disk_writes

let test_nvram_capacity_overflow () =
  (* 1 MB buffer = 128 blocks; write 256 distinct blocks quickly. *)
  let t = Nvram.create (nvram_cfg 3600.) in
  for b = 0 to 255 do
    Nvram.observe t (write_rec ~time:(100. +. float_of_int b) ~offset:(b * 8192) ~count:8192
                       ~size:((b + 1) * 8192) ())
  done;
  let r = Nvram.result t in
  Alcotest.(check bool) "overflow forced flushes" true (r.overflow_flushes > 0);
  Alcotest.(check int) "all versions accounted" 256 (r.absorbed + r.disk_writes)

(* --- hints --- *)

module Hints = Nt_analysis.Hints

let test_hints_classes () =
  Alcotest.(check bool) "tiny" true (Hints.size_class_of 100. = Hints.Tiny);
  Alcotest.(check bool) "large" true (Hints.size_class_of 2e6 = Hints.Large);
  Alcotest.(check bool) "subsecond" true (Hints.lifetime_class_of 0.2 = Hints.Subsecond);
  Alcotest.(check bool) "durable" true (Hints.lifetime_class_of 1e5 = Hints.Durable)

let test_hints_online_learning () =
  let h = Hints.create () in
  (* 20 lock files, all identical behaviour; the first is a cold start,
     the rest should be predicted correctly. *)
  for i = 0 to 19 do
    let fh = Fh.make ~fsid:1 ~fileid:(500 + i) in
    let name = Printf.sprintf "m%d.lock" i in
    let t0 = 1000. +. (float_of_int i *. 10.) in
    Hints.observe h
      (record ~time:t0
         ~result:(Some (Ok (Ops.R_create { fh = Some fh; attr = None })))
         (Ops.Create { dir = dir_fh; name; mode = 0o600; exclusive = false }));
    Hints.observe h
      (record ~time:(t0 +. 0.1) ~result:(Some (Ok Ops.R_empty))
         (Ops.Remove { dir = dir_fh; name }))
  done;
  let s = Hints.score h in
  Alcotest.(check int) "one cold start" 1 s.cold_creates;
  Alcotest.(check int) "19 predictions" 19 s.predictions;
  Alcotest.(check (float 1e-9) "size all correct") 1.0 (Hints.size_accuracy s);
  Alcotest.(check (float 1e-9) "lifetime all correct") 1.0 (Hints.lifetime_accuracy s)

let test_hints_never_peeks () =
  (* A category whose behaviour flips: the online learner must score
     worse than 100% (it predicts from the past only). *)
  let h = Hints.create () in
  for i = 0 to 9 do
    let fh = Fh.make ~fsid:1 ~fileid:(600 + i) in
    let name = Printf.sprintf "flip%d.tmp" i in
    let t0 = 1000. +. (float_of_int i *. 100.) in
    Hints.observe h
      (record ~time:t0
         ~result:(Some (Ok (Ops.R_create { fh = Some fh; attr = None })))
         (Ops.Create { dir = dir_fh; name; mode = 0o600; exclusive = false }));
    (* First half die instantly; second half live long. *)
    let death = if i < 5 then t0 +. 0.5 else t0 +. 90. in
    Hints.observe h
      (record ~time:death ~result:(Some (Ok Ops.R_empty)) (Ops.Remove { dir = dir_fh; name }))
  done;
  let s = Hints.score h in
  Alcotest.(check bool) "behaviour flip hurts accuracy" true
    (Hints.lifetime_accuracy s < 1.0)

(* --- summary --- *)

let test_summary_counts () =
  let s = Summary.create () in
  Summary.observe s (read_rec ~time:Tw.week_start ~offset:0 ~count:8192 ~size:8192 ~eof:true ());
  Summary.observe s (read_rec ~time:(Tw.week_start +. 10.) ~offset:0 ~count:8192 ~size:8192 ~eof:true ());
  Summary.observe s (write_rec ~time:(Tw.week_start +. 20.) ~offset:0 ~count:4096 ~size:4096 ());
  Summary.observe s (record (Ops.Getattr file_fh));
  Alcotest.(check int) "total" 4 (Summary.total_ops s);
  Alcotest.(check int) "reads" 2 (Summary.read_ops s);
  Alcotest.(check int) "writes" 1 (Summary.write_ops s);
  Alcotest.(check (float 1e-6) "bytes read") 16384. (Summary.bytes_read s);
  Alcotest.(check (float 1e-6) "rw op ratio") 2. (Summary.read_write_op_ratio s);
  Alcotest.(check (float 1e-6) "data ops pct") 75. (Summary.data_ops_pct s);
  Alcotest.(check int) "unique files" 1 (Summary.unique_files_accessed s)

let test_summary_daily_scaling () =
  let s = Summary.create () in
  (* 1000 reads over exactly one day. *)
  for i = 0 to 999 do
    Summary.observe s
      (read_rec
         ~time:(Tw.week_start +. (86400. *. float_of_int i /. 999.))
         ~offset:0 ~count:8192 ~size:8192 ~eof:true ())
  done;
  let d = Summary.daily ~scale:0.01 s in
  Alcotest.(check (float 1e-3) "rescaled to full population") 0.1 d.read_ops_m

let () =
  Alcotest.run "nt_analysis"
    [
      ( "io_log",
        [
          Alcotest.test_case "collects" `Quick test_io_log_collects;
          Alcotest.test_case "lost reply" `Quick test_io_log_lost_reply_uses_call;
          Alcotest.test_case "sort fixes swap" `Quick test_sort_window_fixes_swap;
          Alcotest.test_case "sort respects window" `Quick test_sort_window_respects_window;
          Alcotest.test_case "zero window identity" `Quick test_sort_window_zero_is_identity;
        ] );
      ( "runs",
        [
          Alcotest.test_case "split on eof" `Quick test_split_on_eof;
          Alcotest.test_case "split on gap" `Quick test_split_on_gap;
          Alcotest.test_case "contiguous" `Quick test_split_contiguous;
          Alcotest.test_case "sequential" `Quick test_classify_sequential;
          Alcotest.test_case "entire" `Quick test_classify_entire;
          Alcotest.test_case "random" `Quick test_classify_random;
          Alcotest.test_case "jump tolerance" `Quick test_classify_small_jump_tolerance;
          Alcotest.test_case "8k rounding" `Quick test_classify_rounding;
          Alcotest.test_case "singletons" `Quick test_classify_singleton;
          Alcotest.test_case "table3" `Quick test_table3_percentages;
          Alcotest.test_case "fig2 cumulative" `Quick test_by_file_size_cumulative;
        ] );
      ( "seqmetric",
        [
          Alcotest.test_case "sequential run" `Quick test_metric_sequential_run;
          Alcotest.test_case "alternating" `Quick test_metric_alternating;
          Alcotest.test_case "small jumps" `Quick test_metric_small_jumps;
          Alcotest.test_case "singleton" `Quick test_metric_singleton;
        ] );
      ( "reorder",
        [
          Alcotest.test_case "monotone swaps" `Quick test_swap_percentages_monotone;
          Alcotest.test_case "knee" `Quick test_knee_detection;
        ] );
      ( "lifetime",
        [
          Alcotest.test_case "overwrite" `Quick test_lifetime_overwrite;
          Alcotest.test_case "truncate" `Quick test_lifetime_truncate;
          Alcotest.test_case "deletion" `Quick test_lifetime_deletion;
          Alcotest.test_case "rename kills target" `Quick test_lifetime_rename_kills_target;
          Alcotest.test_case "extension births" `Quick test_lifetime_extension_births;
          Alcotest.test_case "pre-existing untracked" `Quick test_lifetime_pre_existing_untracked;
          Alcotest.test_case "phase2 deaths only" `Quick test_lifetime_phase2_deaths_only;
          Alcotest.test_case "end surplus" `Quick test_lifetime_end_surplus;
        ] );
      ( "hourly",
        [
          Alcotest.test_case "bucketing" `Quick test_hourly_bucketing;
          Alcotest.test_case "peak variance" `Quick test_hourly_peak_variance;
        ] );
      ( "names",
        [
          Alcotest.test_case "categorize" `Quick test_categorize;
          Alcotest.test_case "lifecycle" `Quick test_names_lifecycle;
          Alcotest.test_case "byte share" `Quick test_names_byte_share_real;
          Alcotest.test_case "prediction" `Quick test_names_prediction;
        ] );
      ( "nvram",
        [
          Alcotest.test_case "absorbs fast overwrite" `Quick test_nvram_absorbs_fast_overwrite;
          Alcotest.test_case "flushes after delay" `Quick test_nvram_flushes_after_delay;
          Alcotest.test_case "remove absorbs" `Quick test_nvram_remove_absorbs;
          Alcotest.test_case "capacity overflow" `Quick test_nvram_capacity_overflow;
        ] );
      ( "hints",
        [
          Alcotest.test_case "class boundaries" `Quick test_hints_classes;
          Alcotest.test_case "online learning" `Quick test_hints_online_learning;
          Alcotest.test_case "never peeks ahead" `Quick test_hints_never_peeks;
        ] );
      ( "summary",
        [
          Alcotest.test_case "counts" `Quick test_summary_counts;
          Alcotest.test_case "daily scaling" `Quick test_summary_daily_scaling;
        ] );
    ]
