lib/sim/sim_fs.ml: Hashtbl Int64 Nt_nfs String
