(* The fixture project's test unit: the merge-law scanner reads
   prop_merge_laws applications out of this typedtree and credits the
   modules whose merge they name. *)

let prop_merge_laws _name merge = ignore merge
let () = prop_merge_laws "acc_covered" Fix_acc_covered.merge
