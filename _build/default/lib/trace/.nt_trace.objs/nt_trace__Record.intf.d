lib/trace/record.mli: Nt_net Nt_nfs Seq
