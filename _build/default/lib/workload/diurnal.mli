(** Time-of-day / day-of-week load modulation (paper §6.2).

    CAMPUS load is "utterly dominated by the daily rhythms of user
    activity": peak 9am–6pm weekdays, deep night troughs, quieter
    weekends. EECS has the same peak definition but weaker correlation
    with the work week, plus night-time batch (cron) activity that
    produces off-peak spikes.

    Intensities are relative multipliers with a weekly mean of about
    1.0, so a caller multiplies its base rate by [intensity t]. *)

val campus_intensity : float -> float
(** Interactive email/login intensity at absolute time [t]. *)

val eecs_interactive_intensity : float -> float
(** Research-hours intensity: office-hours hump, softer weekend dip. *)

val eecs_batch_intensity : float -> float
(** Cron-driven load: concentrated in the small hours. *)

val weekly_mean : (float -> float) -> float
(** Mean of an intensity over the trace week (for normalisation
    checks); sampled every 10 minutes. *)
