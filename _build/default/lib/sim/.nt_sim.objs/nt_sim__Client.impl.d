lib/sim/client.ml: Float Hashtbl Int64 List Nt_net Nt_nfs Nt_trace Nt_util Option Server
