(* The reachability root of the fixture project: anything it imports is
   treated as running inside task closures. Deliberately clean itself. *)

let use () = Hashtbl.length Fix_mutable.table
