(* ntcheck engine tests over the check_fixtures mini-project: every
   rule fires exactly once on its seeded violation, stays silent on the
   clean twin next to it, and the allowlist attribute suppresses
   without hiding. *)

module Engine = Nt_check.Engine
module Rule = Nt_check.Rule
module Finding = Nt_check.Finding

let fixture_config =
  {
    Engine.default_config with
    roots = [ "Fix_driver"; "Fix_ghost" ];
    (* Fix_ghost exists nowhere: config-drift's seeded violation *)
    lib_prefixes = [ "Fix_" ];
    decode_prefixes = [ "Fix_decode"; "Fix_tbin" ];
    hot_prefixes = [ "Fix_hot" ];
    acc_prefixes = [ "Fix_bound" ];
    test_units = [ "Fix_testreg" ];
    excludes = [];
    exn_roots = [ "Fix_exn.entry"; "Fix_exn_clean.entry"; "Fix_exn_ok.entry" ];
    codecs = [ ("Fix_codec", [ "op" ], "Fix_codec"); ("Fix_codec_clean", [ "op" ], "Fix_codec_clean") ];
    formats_unit = "Fix_formats";
  }

(* dune runtest runs with cwd _build/default/test; dune exec from the
   workspace root does not, so fall back to the build-tree path. *)
let fixture_dir =
  List.find Sys.file_exists [ "check_fixtures"; "_build/default/test/check_fixtures" ]

let run ?(config = fixture_config) () = Engine.run config fixture_dir

let test_loads_cleanly () =
  let t = run () in
  Alcotest.(check (list (pair string string))) "no unreadable cmts" [] (Engine.load_errors t);
  Alcotest.(check int) "all fixture units scanned" 25 (Engine.units_scanned t)

(* decode-raise is seeded twice: once in fix_decode and once in the
   tbin-shaped fixture; every other rule fires on exactly one line. *)
let test_each_rule_fires_exactly_once () =
  let t = run () in
  List.iter
    (fun (r : Rule.t) ->
      let expect = if r.Rule.id = "decode-raise" then 2 else 1 in
      Alcotest.(check int)
        (Printf.sprintf "%s fires exactly %d time(s)" r.Rule.id expect)
        expect (Engine.rule_count t r.Rule.id))
    Rule.all;
  Alcotest.(check int) "one finding per seeded violation, nothing else"
    (List.length Rule.all + 1)
    (List.length (Engine.findings t))

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  go 0

let test_clean_twins_stay_silent () =
  let t = run () in
  List.iter
    (fun (f : Finding.t) ->
      List.iter
        (fun twin ->
          if contains f.Finding.file twin then
            Alcotest.failf "finding %s in clean twin %s" f.Finding.rule.Rule.id f.Finding.file)
        [
          "fix_unreachable"; "fix_acc_covered"; "fix_driver"; "fix_testreg"; "fix_hot_clean";
          "fix_hot_ok"; "fix_bound_clean"; "fix_bound_ok"; "fix_tbin_clean"; "fix_exn_clean";
          "fix_exn_ok"; "fix_codec_clean"; "fix_formats";
        ])
    (Engine.findings t)

let test_suppression_counts () =
  let t = run () in
  Alcotest.(check int) "allowlisted violations counted, not reported" 5 (Engine.allowed t);
  Alcotest.(check (list (pair string int)))
    "one suppression per allowlist attribute, under the right rule"
    [
      ("alloc-hot-string", 1); ("bound-list", 1); ("bound-table", 1); ("dom-top-mutable", 1);
      ("exn-escape", 1);
    ]
    (Engine.allowed_by_rule t)

let test_reachability_set () =
  let t = run () in
  Alcotest.(check (list string)) "driver plus its import, nothing more"
    [ "Fix_driver"; "Fix_mutable" ] (Engine.reachable t)

let test_merge_bookkeeping () =
  let t = run () in
  Alcotest.(check (list string)) "both accumulators required"
    [ "Fix_acc"; "Fix_acc_covered" ]
    (List.sort compare (Engine.merge_required t));
  Alcotest.(check (list string)) "registration credited" [ "Fix_acc_covered" ]
    (Engine.merge_covered t)

let test_per_rule_cap () =
  let t = run ~config:{ fixture_config with Engine.max_per_rule = 0 } () in
  Alcotest.(check int) "no findings under a zero cap" 0 (List.length (Engine.findings t));
  Alcotest.(check int) "every violation counted as overflow"
    (List.length Rule.all + 1)
    (Engine.overflow t);
  Alcotest.(check int) "suppression is not capped" 5 (Engine.allowed t)

let test_disabled_rule () =
  let t = run ~config:{ fixture_config with Engine.disabled = [ "lib-stdout" ] } () in
  Alcotest.(check int) "disabled rule silent" 0 (Engine.rule_count t "lib-stdout");
  Alcotest.(check int) "everything else unaffected" (List.length Rule.all)
    (List.length (Engine.findings t))

let test_enabled_only () =
  let t = run ~config:{ fixture_config with Engine.enabled_only = Some [ "obj-magic" ] } () in
  Alcotest.(check int) "only the enabled rule" 1 (List.length (Engine.findings t));
  Alcotest.(check int) "and it is obj-magic" 1 (Engine.rule_count t "obj-magic")

let test_missing_test_unit_fails_loudly () =
  let t =
    run
      ~config:
        { fixture_config with Engine.roots = [ "Fix_driver" ]; test_units = [ "Fix_nope" ] }
      ()
  in
  Alcotest.(check int) "config-drift for the dead test unit" 1 (Engine.rule_count t "config-drift");
  Alcotest.(check int) "every merge now uncovered" 2 (Engine.rule_count t "merge-law-missing")

let test_findings_are_sorted_and_json_escapes () =
  let t = run () in
  let fs = Engine.findings t in
  Alcotest.(check bool) "sorted by location" true
    (List.sort Finding.compare fs = fs);
  let json = Finding.list_to_json fs in
  Alcotest.(check bool) "json array" true
    (String.length json >= 2 && json.[0] = '[' && json.[String.length json - 1] = ']')

let test_exn_report_rows () =
  let t = run () in
  let rows = Engine.exn_report t in
  let row d = List.find_opt (fun (display, _, _, _) -> display = d) rows in
  (match row "Fix_exn.entry" with
  | Some (_, file, _, may) ->
      Alcotest.(check (list string)) "entry residual is the escaping Failure" [ "Failure" ] may;
      Alcotest.(check bool) "row points at the fixture source" true (contains file "fix_exn")
  | None -> Alcotest.fail "Fix_exn.entry missing from the may-raise report");
  (match row "Fix_exn_clean.entry" with
  | Some (_, _, _, may) ->
      Alcotest.(check (list string)) "handler subtraction empties the clean twin" [] may
  | None -> Alcotest.fail "Fix_exn_clean.entry missing from the may-raise report");
  (* the closure is the un-annotated graph: the accepted spill still shows *)
  Alcotest.(check bool) "annotated callee still censused" true
    (List.exists (fun (d, _, _, _) -> d = "Fix_exn_ok.spill") rows)

let test_sarif_output () =
  let t = run () in
  let sarif = Finding.list_to_sarif (Engine.findings t) in
  Alcotest.(check bool) "sarif envelope" true
    (contains sarif {|"version":"2.1.0"|} && contains sarif {|"name":"ntcheck"|});
  (* one rule entry per registered rule, one result per finding *)
  let count needle hay =
    let nh = String.length hay and nn = String.length needle in
    let n = ref 0 in
    for i = 0 to nh - nn do
      if String.sub hay i nn = needle then incr n
    done;
    !n
  in
  Alcotest.(check int) "every registered rule listed" (List.length Rule.all)
    (count {|"shortDescription"|} sarif);
  Alcotest.(check int) "one result per finding"
    (List.length (Engine.findings t))
    (count {|"ruleId"|} sarif)

(* --- may-raise fixpoint properties on random call graphs --- *)

module Exnflow = Nt_check.Exnflow

let gen_graph =
  let open QCheck.Gen in
  let exn_name = oneofl [ "Failure"; "Not_found"; "Invalid_argument" ] in
  int_range 1 8 >>= fun n ->
  let names = List.init n (fun i -> "n" ^ string_of_int i) in
  let gen_item =
    oneof
      [
        map (fun e -> Exnflow.Prim (e, ())) exn_name;
        map (fun t -> Exnflow.Call t) (oneofl names);
        return (Exnflow.Prim_top ());
      ]
  in
  let gen_catch =
    oneof
      [
        return Exnflow.Catch_all;
        map (fun l -> Exnflow.Catch_names l) (list_size (int_range 0 2) exn_name);
      ]
  in
  let gen_guard =
    map2 (fun c items -> Exnflow.Guard (c, items)) gen_catch (list_size (int_range 0 3) gen_item)
  in
  let gen_summary = list_size (int_range 0 4) (oneof [ gen_item; gen_guard ]) in
  flatten_l (List.map (fun name -> map (fun s -> (name, s)) gen_summary) names)

let lookup sol id = match Hashtbl.find_opt sol id with Some e -> e | None -> Exnflow.bot

let prop_solve_is_fixpoint =
  QCheck.Test.make ~name:"solve terminates on a fixpoint of eval" ~count:300
    (QCheck.make gen_graph) (fun g ->
      let sol = Exnflow.solve g in
      List.for_all
        (fun (id, items) -> Exnflow.equal_exns (Exnflow.eval (lookup sol) items) (lookup sol id))
        g)

let prop_solve_monotone =
  QCheck.Test.make ~name:"adding a raise never shrinks any solution" ~count:300
    QCheck.(pair (make gen_graph) small_nat)
    (fun (g, k) ->
      let i = k mod List.length g in
      let g' =
        List.mapi
          (fun j (id, items) ->
            if j = i then (id, Exnflow.Prim ("Extra", ()) :: items) else (id, items))
          g
      in
      let s1 = Exnflow.solve g and s2 = Exnflow.solve g' in
      List.for_all (fun (id, _) -> Exnflow.leq (lookup s1 id) (lookup s2 id)) g)

let () =
  Alcotest.run "nt_check"
    [
      ( "fixtures",
        [
          Alcotest.test_case "fixture cmts load" `Quick test_loads_cleanly;
          Alcotest.test_case "each rule fires exactly once" `Quick
            test_each_rule_fires_exactly_once;
          Alcotest.test_case "clean twins stay silent" `Quick test_clean_twins_stay_silent;
          Alcotest.test_case "allowlist suppresses and counts" `Quick test_suppression_counts;
          Alcotest.test_case "reachability is driver + import" `Quick test_reachability_set;
          Alcotest.test_case "merge requirement and coverage" `Quick test_merge_bookkeeping;
        ] );
      ( "engine",
        [
          Alcotest.test_case "per-rule cap overflows" `Quick test_per_rule_cap;
          Alcotest.test_case "--disable silences a rule" `Quick test_disabled_rule;
          Alcotest.test_case "--enable restricts to a rule" `Quick test_enabled_only;
          Alcotest.test_case "dead test unit fails loudly" `Quick
            test_missing_test_unit_fails_loudly;
          Alcotest.test_case "findings sorted, json well-formed" `Quick
            test_findings_are_sorted_and_json_escapes;
          Alcotest.test_case "may-raise report rows" `Quick test_exn_report_rows;
          Alcotest.test_case "sarif output well-formed" `Quick test_sarif_output;
        ] );
      ( "exnflow",
        [
          QCheck_alcotest.to_alcotest prop_solve_is_fixpoint;
          QCheck_alcotest.to_alcotest prop_solve_monotone;
        ] );
    ]
