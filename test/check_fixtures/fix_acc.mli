(* An accumulator exposing merge : t -> t -> t with NO registered
   merge-law property and NO footprint value: merge-law-missing and
   footprint-missing must both fire here (once each). *)

type t

val empty : t
val add : t -> int -> t
val merge : t -> t -> t
