(** Per-flow TCP stream reassembly for the capture path.

    The monitor sees raw segments which may be duplicated, reordered, or
    missing (the CAMPUS mirror port dropped up to 10% of packets during
    bursts, §4.1.4). This module reconstructs each direction of each
    connection into an in-order byte stream and reports unrecoverable
    holes as {!Gap} events so the RPC layer can resynchronise and the
    capture engine can account for the loss.

    Sequence-number comparison is wraparound-aware (RFC 1982 style), so
    long-lived CAMPUS connections that wrap 2^32 are handled. *)

type flow = { src_ip : Ip_addr.t; src_port : int; dst_ip : Ip_addr.t; dst_port : int }
(** One direction of a connection. *)

type event =
  | Data of string  (** next in-order bytes of the stream *)
  | Gap of int  (** [Gap n]: approximately [n] bytes were lost; stream resumes after *)

type t

val create : ?max_buffered_segments:int -> unit -> t
(** [max_buffered_segments] (default 64) bounds the out-of-order buffer
    per flow; when exceeded, the reassembler declares a gap and resyncs
    at the earliest buffered segment. *)

val push : t -> flow -> seq:int -> syn:bool -> string -> event list
(** Feed one segment; returns the in-order events it unlocked. A SYN
    consumes one sequence number and establishes the initial sequence
    number for the flow. *)

val flows : t -> int
(** Number of distinct flows seen. *)

val gaps : t -> int
(** Total number of gap events declared so far. *)
