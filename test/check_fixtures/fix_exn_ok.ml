(* Allowlisted twin of fix_exn: the escape through [spill] is accepted
   with [@@nt.raise_ok], so the root stays silent and the suppression
   shows up in the census instead. *)

let spill () = failwith "spill"
[@@nt.raise_ok "fixture: deliberate escape, accepted and counted"]

let entry () = spill ()
