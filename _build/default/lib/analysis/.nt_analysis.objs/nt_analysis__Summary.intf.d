lib/analysis/summary.mli: Nt_nfs Nt_trace
