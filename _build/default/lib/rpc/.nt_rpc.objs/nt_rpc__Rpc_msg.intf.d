lib/rpc/rpc_msg.mli: Nt_xdr
