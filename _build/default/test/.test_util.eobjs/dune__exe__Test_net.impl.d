test/test_net.ml: Alcotest Array Buffer Bytes Char Int64 List Nt_net Nt_util Option QCheck QCheck_alcotest Seq String
