(** Create-based block lifetime analysis (§5.2, Table 4, Figure 3).

    Follows Roselli's two-phase method as the paper applies it: during
    Phase 1 both block births and deaths are recorded; during Phase 2
    (the end margin) only deaths of Phase-1-born blocks are recorded.
    Death records whose lifespan exceeds the Phase 2 length are dropped
    to remove sampling bias; blocks still alive at the end are the
    "end surplus".

    Births divide into actual data writes vs file extension (blocks
    materialised by a write past EOF, including the skipped-over
    blocks, which the paper notes mildly exaggerates extensions).
    Deaths divide into overwrite, truncate and file deletion. Blocks
    that already existed before Phase 1 are tracked as live but
    uncountable, exactly as a create-based analysis must. *)

type config = {
  phase1_start : float;
  phase1_len : float;  (** paper: 24 h *)
  phase2_len : float;  (** paper: 24 h end margin *)
  block : int;  (** 8192 *)
}

val config : phase1_start:float -> config
(** 24 h + 24 h at 8 KB, the paper's parameters. *)

type t

val create : config -> t

val observe : t -> Nt_trace.Record.t -> unit
(** Records must arrive in time order (the pipeline guarantees it). *)

type result = {
  births : int;
  births_write_pct : float;
  births_extension_pct : float;
  deaths : int;  (** after the sampling-bias filter *)
  deaths_overwrite_pct : float;
  deaths_truncate_pct : float;
  deaths_deletion_pct : float;
  end_surplus : int;
  end_surplus_pct : float;  (** of births *)
  lifetime_cdf : (float * float) list;  (** (seconds, cumulative fraction) *)
}

val result : t -> result

val cdf_at : result -> float -> float
(** Cumulative fraction of deaths with lifetime <= the given seconds. *)
