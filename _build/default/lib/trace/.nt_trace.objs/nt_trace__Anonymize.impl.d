lib/trace/anonymize.ml: Bytes Hashtbl List Nt_net Nt_nfs Nt_util Option Record Result String
