lib/util/tables.mli:
