(** Frame-level services for the nttb/1 container: payload checksums
    and the lightweight run-length frame compressor.

    The compressor is PackBits-style: a control byte [c] either copies
    [c + 1] literal bytes (c in 0..127) or repeats the next byte
    [c - 125] times (c in 128..255, runs of 3..130). Varint payloads
    compress on their zero runs (option bitmaps, zero nanoseconds,
    interned-atom back-references) and the worst case expands by under
    1%, which is why the writer keeps a frame compressed only when it
    actually shrank. *)

val adler32 : string -> pos:int -> len:int -> int
(** Adler-32 (RFC 1950) of a slice, as a non-negative int below
    2^32. *)

val compress : string -> string
(** Run-length encode; total, never raises. *)

val decompress : string -> pos:int -> len:int -> expect:int -> string
(** Inverse of {!compress} over a slice. Raises {!Varint.Corrupt}
    unless the slice decodes to exactly [expect] bytes with no input
    left over — the decoder treats that as frame corruption. *)
