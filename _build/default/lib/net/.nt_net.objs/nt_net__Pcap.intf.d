lib/net/pcap.mli: Buffer Seq
