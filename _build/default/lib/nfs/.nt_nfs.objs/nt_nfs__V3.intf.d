lib/nfs/v3.mli: Nt_xdr Ops Proc Types
