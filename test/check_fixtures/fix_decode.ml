(* Decode-purity fixtures: this unit is in the configured decode scope. *)

exception Bad of string

(* violation: decode-raise (untyped stdlib failure on a decode path
   that exposes no result/option to the caller) *)
let decode_u32 (b : bytes) = if Bytes.length b < 4 then failwith "short" else Bytes.get_uint8 b 0

(* clean twin: result-returning decoders may use untyped failures for
   genuinely unreachable branches *)
let decode_checked (b : bytes) =
  if Bytes.length b > 1024 then failwith "oversized" else Ok (Bytes.length b)

(* clean twin: a typed project exception is the counted failure channel *)
let decode_tagged (b : bytes) = if Bytes.length b = 0 then raise (Bad "empty") else Bytes.get_uint8 b 0

(* clean twin: raising inside try in the same function is local control
   flow, not an escape *)
let decode_first (b : bytes) = try if Bytes.length b = 0 then raise Exit else 1 with Exit -> 0

(* violation: decode-partial-match (compiled with -w -a so only ntcheck
   sees it) *)
let tag_name (t : int) = match t with 0 -> "null" | 1 -> "data"

(* violation: alloc-hot-format (decode* bindings in the decode scope
   seed the alloc-hot set; format interpretation allocates per record) *)
let decode_label (t : int) = Printf.sprintf "tag-%d" t
