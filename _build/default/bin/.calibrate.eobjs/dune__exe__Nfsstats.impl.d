bin/nfsstats.ml: Arg Cmd Cmdliner List Nt_analysis Nt_nfs Nt_trace Nt_util Printf Term
