let adler_base = 65521
let adler_nmax = 5552 (* max bytes before the sums can overflow 63 bits *)

let adler32 s ~pos ~len =
  let a = ref 1 and b = ref 0 in
  let i = ref pos in
  let stop = pos + len in
  while !i < stop do
    let batch = min adler_nmax (stop - !i) in
    for j = !i to !i + batch - 1 do
      a := !a + Char.code (String.unsafe_get s j);
      b := !b + !a
    done;
    a := !a mod adler_base;
    b := !b mod adler_base;
    i := !i + batch
  done;
  (!b lsl 16) lor !a

let min_run = 3
let max_run = 130
let max_literal = 128

let compress s =
  let n = String.length s in
  let out = Buffer.create (n / 2) in
  let lit_start = ref 0 in
  let flush_literals stop =
    let i = ref !lit_start in
    while !i < stop do
      let chunk = min max_literal (stop - !i) in
      Buffer.add_char out (Char.unsafe_chr (chunk - 1));
      Buffer.add_substring out s !i chunk;
      i := !i + chunk
    done;
    lit_start := stop
  in
  let i = ref 0 in
  while !i < n do
    let c = String.unsafe_get s !i in
    let run = ref 1 in
    while !i + !run < n && !run < max_run && String.unsafe_get s (!i + !run) = c do
      incr run
    done;
    if !run >= min_run then begin
      flush_literals !i;
      Buffer.add_char out (Char.unsafe_chr (128 + (!run - min_run)));
      Buffer.add_char out c;
      i := !i + !run;
      lit_start := !i
    end
    else i := !i + !run
  done;
  flush_literals n;
  Buffer.contents out

let decompress s ~pos ~len ~expect =
  let out = Bytes.create expect in
  let stop = pos + len in
  let i = ref pos and o = ref 0 in
  while !i < stop do
    let c = Char.code (String.unsafe_get s !i) in
    incr i;
    if c < 128 then begin
      let chunk = c + 1 in
      if !i + chunk > stop || !o + chunk > expect then raise Varint.Corrupt;
      Bytes.blit_string s !i out !o chunk;
      i := !i + chunk;
      o := !o + chunk
    end
    else begin
      let run = c - 128 + min_run in
      if !i >= stop || !o + run > expect then raise Varint.Corrupt;
      Bytes.fill out !o run (String.unsafe_get s !i);
      incr i;
      o := !o + run
    end
  done;
  if !o <> expect then raise Varint.Corrupt;
  Bytes.unsafe_to_string out
