(** Ethernet / IPv4 / UDP / TCP frame construction and parsing.

    The simulator builds complete frames with these functions and the
    capture engine parses them back, so both directions are honest wire
    formats: big-endian fields, real IPv4 header checksums, correct
    length fields. Jumbo (9000-byte MTU) frames are just frames with a
    large payload — nothing special is required beyond not fragmenting.

    TCP here carries only what reassembly needs (ports, sequence number,
    SYN/FIN flags); window/urgent/options are fixed benign values. *)

type transport =
  | Udp of { src_port : int; dst_port : int; payload : string }
  | Tcp of { src_port : int; dst_port : int; seq : int; syn : bool; fin : bool; payload : string }

type t = {
  src_mac : string;  (** 6 bytes *)
  dst_mac : string;  (** 6 bytes *)
  src_ip : Ip_addr.t;
  dst_ip : Ip_addr.t;
  transport : transport;
}

val default_src_mac : string
val default_dst_mac : string

val udp : ?src_mac:string -> ?dst_mac:string -> src_ip:Ip_addr.t -> dst_ip:Ip_addr.t ->
  src_port:int -> dst_port:int -> string -> t

val tcp : ?src_mac:string -> ?dst_mac:string -> ?syn:bool -> ?fin:bool -> src_ip:Ip_addr.t ->
  dst_ip:Ip_addr.t -> src_port:int -> dst_port:int -> seq:int -> string -> t

val encode : t -> string
(** Full Ethernet frame bytes. *)

val decode : string -> (t, string) result
(** Parse a frame; [Error] describes why it was rejected (non-IPv4
    ethertype, truncation, bad header length, unsupported protocol).
    The capture engine counts and skips rejected frames. *)

val ipv4_checksum : string -> pos:int -> len:int -> int
(** One's-complement checksum over a header region, exposed for tests. *)

val header_checksum_ok : string -> bool
(** Verify the IPv4 header checksum of an encoded frame. [true] when
    the checksum verifies {e or} the frame is not structurally IPv4 (a
    structural failure is {!decode}'s to report); [false] means the
    frame parsed but its header bytes were corrupted in flight — the
    capture engine counts these separately from undecodable frames. *)
