type packet = { time : float; orig_len : int; data : string }

exception Bad_format of string

let magic_us = 0xA1B2C3D4
let magic_ns = 0xA1B23C4D
let linktype_ethernet = 1

(* --- writing (little-endian, microsecond) --- *)

type sink = To_buffer of Buffer.t | To_channel of out_channel

type writer = { sink : sink; snaplen : int }

let put16le buf v =
  Buffer.add_char buf (Char.chr (v land 0xFF));
  Buffer.add_char buf (Char.chr ((v lsr 8) land 0xFF))

let put32le buf v =
  put16le buf (v land 0xFFFF);
  put16le buf ((v lsr 16) land 0xFFFF)

let global_header snaplen =
  let buf = Buffer.create 24 in
  put32le buf magic_us;
  put16le buf 2;
  put16le buf 4;
  put32le buf 0 (* thiszone *);
  put32le buf 0 (* sigfigs *);
  put32le buf snaplen;
  put32le buf linktype_ethernet;
  Buffer.contents buf

let emit w s =
  match w.sink with To_buffer b -> Buffer.add_string b s | To_channel oc -> output_string oc s

let make_writer ?(snaplen = 65535) sink =
  let w = { sink; snaplen } in
  emit w (global_header snaplen);
  w

let writer_to_buffer ?snaplen b = make_writer ?snaplen (To_buffer b)
let writer_to_channel ?snaplen oc = make_writer ?snaplen (To_channel oc)

let write w ~time data =
  let sec = int_of_float (Float.floor time) in
  let usec = int_of_float (Float.round ((time -. Float.of_int sec) *. 1e6)) in
  let sec, usec = if usec >= 1_000_000 then (sec + 1, usec - 1_000_000) else (sec, usec) in
  let incl = min (String.length data) w.snaplen in
  let buf = Buffer.create (16 + incl) in
  put32le buf sec;
  put32le buf usec;
  put32le buf incl;
  put32le buf (String.length data);
  Buffer.add_substring buf data 0 incl;
  emit w (Buffer.contents buf)

(* --- reading --- *)

type source = From_string of { data : string; mutable pos : int } | From_channel of in_channel

type reader = {
  source : source;
  big_endian : bool;
  nanosecond : bool;
}

let read_exact source n =
  match source with
  | From_string s ->
      if String.length s.data - s.pos < n then None
      else begin
        let r = String.sub s.data s.pos n in
        s.pos <- s.pos + n;
        Some r
      end
  | From_channel ic -> (
      let b = Bytes.create n in
      try
        really_input ic b 0 n;
        Some (Bytes.to_string b)
      with End_of_file -> None)

let u32 ~be s pos =
  let b i = Char.code s.[pos + i] in
  if be then (b 0 lsl 24) lor (b 1 lsl 16) lor (b 2 lsl 8) lor b 3
  else (b 3 lsl 24) lor (b 2 lsl 16) lor (b 1 lsl 8) lor b 0

let make_reader source =
  match read_exact source 24 with
  | None -> raise (Bad_format "missing global header")
  | Some hdr ->
      let try_magic be =
        let m = u32 ~be hdr 0 in
        if m = magic_us then Some (be, false)
        else if m = magic_ns then Some (be, true)
        else None
      in
      let big_endian, nanosecond =
        match try_magic true with
        | Some r -> r
        | None -> (
            match try_magic false with
            | Some r -> r
            | None -> raise (Bad_format "bad magic number"))
      in
      let linktype = u32 ~be:big_endian hdr 20 in
      if linktype <> linktype_ethernet then
        raise (Bad_format (Printf.sprintf "unsupported linktype %d" linktype));
      { source; big_endian; nanosecond }

let reader_of_string s = make_reader (From_string { data = s; pos = 0 })
let reader_of_channel ic = make_reader (From_channel ic)

let read_next r =
  match read_exact r.source 16 with
  | None -> None
  | Some hdr ->
      let be = r.big_endian in
      let sec = u32 ~be hdr 0 in
      let frac = u32 ~be hdr 4 in
      let incl = u32 ~be hdr 8 in
      let orig_len = u32 ~be hdr 12 in
      if incl > 0x4000000 then raise (Bad_format "absurd packet length");
      let data =
        match read_exact r.source incl with
        | Some d -> d
        | None -> raise (Bad_format "truncated packet record")
      in
      let scale = if r.nanosecond then 1e-9 else 1e-6 in
      Some { time = Float.of_int sec +. (Float.of_int frac *. scale); orig_len; data }

let fold r f init =
  let rec go acc = match read_next r with None -> acc | Some p -> go (f acc p) in
  go init

let packets r =
  let rec next () = match read_next r with None -> Seq.Nil | Some p -> Seq.Cons (p, next) in
  next
