bin/nfsstats.mli:
