examples/email_workload.mli:
