test/test_trace.ml: Alcotest Buffer Bytes Char Filename Gen Int64 List Nt_analysis Nt_net Nt_nfs Nt_sim Nt_trace Printf QCheck QCheck_alcotest Result Seq String Sys
