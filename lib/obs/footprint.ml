type t = { cards : int; words : int }

let zero = { cards = 0; words = 0 }
let v ~cards ~words = { cards; words }
let add a b = { cards = a.cards + b.cards; words = a.words + b.words }
let scale n a = { cards = a.cards * n; words = a.words * n }

type pub = { p_cards : Obs.gauge; p_words : Obs.gauge }

let publisher obs ~component =
  let labels = [ ("component", component) ] in
  {
    p_cards =
      Obs.gauge obs ~labels ~help:"tracked entries held by a bounded state component"
        "nt_state_cards";
    p_words =
      Obs.gauge obs ~labels ~help:"approximate heap words held by a state component"
        "nt_state_words";
  }

let set pub fp =
  Obs.set pub.p_cards (float_of_int fp.cards);
  Obs.set pub.p_words (float_of_int fp.words)

let publish obs ~component fp = set (publisher obs ~component) fp
