type t = { rule : Rule.t; file : string; line : int; col : int; detail : string }

let v rule ~file ~line ~col detail = { rule; file; line; col; detail }

let of_loc rule (loc : Location.t) detail =
  {
    rule;
    file = loc.loc_start.pos_fname;
    line = loc.loc_start.pos_lnum;
    col = loc.loc_start.pos_cnum - loc.loc_start.pos_bol;
    detail;
  }

let compare a b =
  let c = String.compare a.file b.file in
  if c <> 0 then c
  else
    let c = Int.compare a.line b.line in
    if c <> 0 then c
    else
      let c = Int.compare a.col b.col in
      if c <> 0 then c
      else
        let c = String.compare a.rule.Rule.id b.rule.Rule.id in
        if c <> 0 then c else String.compare a.detail b.detail

let to_string f =
  let where = if f.line <= 0 then f.file else Printf.sprintf "%s:%d:%d" f.file f.line f.col in
  Printf.sprintf "%s %s %s: %s"
    (Rule.severity_to_string f.rule.Rule.severity)
    f.rule.Rule.id where f.detail

let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\r' -> Buffer.add_string buf "\\r"
      | c when Char.code c < 32 -> Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let to_json f =
  Printf.sprintf
    {|{"rule":"%s","family":"%s","severity":"%s","file":"%s","line":%d,"col":%d,"detail":"%s"}|}
    (json_escape f.rule.Rule.id)
    (Rule.family_to_string f.rule.Rule.family)
    (Rule.severity_to_string f.rule.Rule.severity)
    (json_escape f.file) f.line f.col (json_escape f.detail)

let list_to_json fs = "[" ^ String.concat "," (List.map to_json fs) ^ "]"

(* SARIF 2.1.0, one run, one result per finding.  The rule registry
   becomes the driver's rules array so viewers can show family + doc;
   severities map Info/Warn/Error -> note/warning/error.  Lines and
   columns are clamped to 1 because SARIF forbids 0 (synthesized
   whole-unit findings anchor at line 1). *)
let sarif_level (s : Rule.severity) =
  match s with Rule.Info -> "note" | Rule.Warn -> "warning" | Rule.Error -> "error"

let list_to_sarif fs =
  let rules =
    String.concat ","
      (List.map
         (fun (r : Rule.t) ->
           Printf.sprintf
             {|{"id":"%s","shortDescription":{"text":"%s"},"properties":{"family":"%s"},"defaultConfiguration":{"level":"%s"}}|}
             (json_escape r.Rule.id)
             (json_escape r.Rule.doc)
             (json_escape (Rule.family_to_string r.Rule.family))
             (sarif_level r.Rule.severity))
         Rule.all)
  in
  let results =
    String.concat ","
      (List.map
         (fun f ->
           Printf.sprintf
             {|{"ruleId":"%s","level":"%s","message":{"text":"%s"},"locations":[{"physicalLocation":{"artifactLocation":{"uri":"%s"},"region":{"startLine":%d,"startColumn":%d}}}]}|}
             (json_escape f.rule.Rule.id)
             (sarif_level f.rule.Rule.severity)
             (json_escape f.detail) (json_escape f.file) (max 1 f.line) (max 1 (f.col + 1)))
         fs)
  in
  Printf.sprintf
    {|{"version":"2.1.0","$schema":"https://json.schemastore.org/sarif-2.1.0.json","runs":[{"tool":{"driver":{"name":"ntcheck","rules":[%s]}},"results":[%s]}]}|}
    rules results

type sink = { emit : Rule.t -> Location.t -> string -> unit; allow : Rule.t -> unit }
