examples/research_workload.ml: Float List Nt_analysis Nt_core Nt_nfs Nt_util Nt_workload Printf
