lib/nfs/mount.ml: Fh List Nt_xdr Types
