type t = string

let magic = "NFH1"
let v2_size = 32

let of_raw s =
  assert (String.length s <= 64);
  s
[@@nt.raise_ok
  "every wire decoder bounds the handle first: v2 reads a fixed 32 bytes, v3 and the tbin \
   codec reject anything past NFS3_FHSIZE before constructing"]

let to_raw t = t

let make ~fsid ~fileid =
  let b = Bytes.make v2_size '\000' in
  Bytes.blit_string magic 0 b 0 4;
  Bytes.set_int32_be b 4 (Int32.of_int fsid);
  Bytes.set_int64_be b 8 (Int64.of_int fileid);
  Bytes.unsafe_to_string b

let fileid t =
  if String.length t >= 16 && String.sub t 0 4 = magic then
    Some (Int64.to_int (String.get_int64_be t 8))
  else None

let fsid t =
  if String.length t >= 16 && String.sub t 0 4 = magic then
    Some (Int32.to_int (String.get_int32_be t 4))
  else None

let hex_digits = "0123456789abcdef"

let hex_of_prefix t n =
  let b = Bytes.create (2 * n) in
  for i = 0 to n - 1 do
    let c = Char.code t.[i] in
    Bytes.set b (2 * i) hex_digits.[c lsr 4];
    Bytes.set b ((2 * i) + 1) hex_digits.[c land 0xF]
  done;
  Bytes.unsafe_to_string b

let to_hex t = hex_of_prefix t (min (String.length t) 16)
let to_hex_full t = hex_of_prefix t (String.length t)

let of_hex s =
  let n = String.length s in
  if n mod 2 <> 0 || n > 128 then None
  else
    let hex c =
      match c with
      | '0' .. '9' -> Some (Char.code c - Char.code '0')
      | 'a' .. 'f' -> Some (Char.code c - Char.code 'a' + 10)
      | 'A' .. 'F' -> Some (Char.code c - Char.code 'A' + 10)
      | _ -> None
    in
    let b = Bytes.create (n / 2) in
    let ok = ref true in
    for i = 0 to (n / 2) - 1 do
      match (hex s.[2 * i], hex s.[(2 * i) + 1]) with
      | Some hi, Some lo -> Bytes.set b i (Char.chr ((hi lsl 4) lor lo))
      | _ -> ok := false
    done;
    if !ok then Some (Bytes.unsafe_to_string b) else None

let equal = String.equal
let compare = String.compare
let hash = Hashtbl.hash

let to_v2_raw t =
  let n = String.length t in
  if n = v2_size then t
  else if n > v2_size then String.sub t 0 v2_size
  else t ^ String.make (v2_size - n) '\000'
