lib/net/ip_addr.ml: Hashtbl Int Printf String
