module Record = Nt_trace.Record
module Obs = Nt_obs.Obs
module Timeline = Nt_obs.Timeline

type 'a pass = {
  name : string;
  init : unit -> 'a;
  init_shard : unit -> 'a;
  observe : 'a -> Record.t -> unit;
  merge : 'a -> 'a -> 'a;
}

type job = Job : 'a pass * ('a -> unit) -> job

let instrument obs pool ~shards ~tasks =
  Obs.set (Obs.gauge obs ~help:"worker domains in the shard pool" "par.jobs")
    (float_of_int (Pool.size pool));
  Obs.set_max
    (Obs.gauge obs ~help:"peak queued shard tasks" "par.queue_depth")
    (float_of_int (Pool.peak_queue pool));
  Obs.add (Obs.counter obs ~help:"shard tasks executed" "par.tasks") tasks;
  Obs.add (Obs.counter obs ~help:"shards planned" "par.shards") shards

let run_jobs ?(obs = Obs.null) ?timeline pool ~(records : Record.t array)
    ~(slices : Shard.slice array) jobs =
  Shard.check ~total:(Array.length records) slices;
  let nslices = Array.length slices in
  let tasks = ref [] in
  let ntasks = ref 0 in
  let finishers = ref [] in
  List.iter
    (fun (Job (p, k)) ->
      let accs = Array.make (max nslices 1) None in
      let times = Array.make (max nslices 1) 0. in
      let span_name = "par.pass." ^ p.name in
      (* Worker-private trace buffers, one per shard task: a worker
         appends its own completed span, the coordinator absorbs them
         in slice order at join — no cross-domain mutation. *)
      let tbufs =
        match timeline with
        | None -> [||]
        | Some _ -> Array.init (max nslices 1) (fun _ -> Timeline.buf ())
      in
      Array.iteri
        (fun si (s : Shard.slice) ->
          incr ntasks;
          tasks :=
            (fun () ->
              let t0 = Unix.gettimeofday () in
              (* Shard 0 is the root: it starts the trace, so full
                 sequential semantics apply to it directly. *)
              let acc = if si = 0 then p.init () else p.init_shard () in
              for i = s.off to s.off + s.len - 1 do
                p.observe acc records.(i)
              done;
              let t1 = Unix.gettimeofday () in
              times.(si) <- t1 -. t0;
              if Array.length tbufs > 0 then
                Timeline.buf_add tbufs.(si) ~name:span_name ~t0 ~t1;
              accs.(si) <- Some acc)
            :: !tasks)
        slices;
      finishers :=
        (fun () ->
          (match timeline with
          | Some tl -> Array.iter (Timeline.absorb tl) tbufs
          | None -> ());
          for si = 0 to nslices - 1 do
            Obs.span_record obs ("par.pass." ^ p.name) ~seconds:times.(si)
          done;
          let root =
            if nslices = 0 then p.init ()
            else match accs.(0) with Some a -> a | None -> assert false
          in
          let merged =
            Obs.with_span obs "par.merge" (fun () ->
                let acc = ref root in
                for si = 1 to nslices - 1 do
                  match accs.(si) with Some b -> acc := p.merge !acc b | None -> assert false
                done;
                !acc)
          in
          k merged)
        :: !finishers)
    jobs;
  ignore (Pool.run_all pool (Array.of_list (List.rev !tasks)) : unit array);
  instrument obs pool ~shards:nslices ~tasks:!ntasks;
  (* Merges run on the coordinator, in job order then shard order —
     part of the fixed plan that makes output worker-count-invariant. *)
  List.iter (fun f -> f ()) (List.rev !finishers)

let run_pass ?obs ?timeline pool ~records ~slices p =
  let out = ref None in
  run_jobs ?obs ?timeline pool ~records ~slices [ Job (p, fun a -> out := Some a) ];
  match !out with Some a -> a | None -> assert false

let map_chunks ?(obs = Obs.null) ?timeline ?(chunk = 512) pool ~name f items =
  if chunk <= 0 then invalid_arg "Driver.map_chunks: chunk must be positive";
  let n = Array.length items in
  if n = 0 then []
  else begin
    let slices = Shard.plan ~records_per_shard:chunk n in
    let times = Array.make (Array.length slices) 0. in
    let span_name = "par.pass." ^ name in
    let tbufs =
      match timeline with
      | None -> [||]
      | Some _ -> Array.init (Array.length slices) (fun _ -> Timeline.buf ())
    in
    let tasks =
      Array.mapi
        (fun i (s : Shard.slice) () ->
          let t0 = Unix.gettimeofday () in
          let r = f (Array.sub items s.off s.len) in
          let t1 = Unix.gettimeofday () in
          times.(i) <- t1 -. t0;
          if Array.length tbufs > 0 then Timeline.buf_add tbufs.(i) ~name:span_name ~t0 ~t1;
          r)
        slices
    in
    let results = Pool.run_all pool tasks in
    (match timeline with
    | Some tl -> Array.iter (Timeline.absorb tl) tbufs
    | None -> ());
    Array.iter (fun s -> Obs.span_record obs ("par.pass." ^ name) ~seconds:s) times;
    instrument obs pool ~shards:(Array.length slices) ~tasks:(Array.length slices);
    Array.to_list results
  end
