(* Workload-level and end-to-end integration tests: short simulations
   with behavioural assertions, the full packet pipeline, and the
   anonymize-then-analyze flow. *)

module Tw = Nt_util.Trace_week
module Record = Nt_trace.Record
module Summary = Nt_analysis.Summary
module Names = Nt_analysis.Names
module Pipeline = Nt_core.Pipeline
module Diurnal = Nt_workload.Diurnal
module Io_patterns = Nt_workload.Io_patterns

(* --- diurnal --- *)

let test_diurnal_peak_vs_night () =
  let noon = Tw.time_of ~day:Tw.Wed ~hour:12 ~minute:0 in
  let night = Tw.time_of ~day:Tw.Wed ~hour:4 ~minute:0 in
  Alcotest.(check bool) "campus noon busier" true
    (Diurnal.campus_intensity noon > 3. *. Diurnal.campus_intensity night);
  Alcotest.(check bool) "eecs noon busier" true
    (Diurnal.eecs_interactive_intensity noon > Diurnal.eecs_interactive_intensity night);
  Alcotest.(check bool) "batch inverts: night busier" true
    (Diurnal.eecs_batch_intensity night > Diurnal.eecs_batch_intensity noon)

let test_diurnal_weekend_quieter () =
  let wed = Tw.time_of ~day:Tw.Wed ~hour:14 ~minute:0 in
  let sat = Tw.time_of ~day:Tw.Sat ~hour:14 ~minute:0 in
  Alcotest.(check bool) "weekday busier" true
    (Diurnal.campus_intensity wed > Diurnal.campus_intensity sat)

let test_diurnal_mean_near_one () =
  let m = Diurnal.weekly_mean Diurnal.campus_intensity in
  Alcotest.(check bool) "campus weekly mean ~1" true (m > 0.7 && m < 1.2);
  let m2 = Diurnal.weekly_mean Diurnal.eecs_interactive_intensity in
  Alcotest.(check bool) "eecs weekly mean ~1" true (m2 > 0.7 && m2 < 1.2)

let test_diurnal_continuous () =
  (* Interpolation: no big jumps between adjacent minutes. *)
  let t = Tw.time_of ~day:Tw.Mon ~hour:8 ~minute:59 in
  let v1 = Diurnal.campus_intensity t in
  let v2 = Diurnal.campus_intensity (t +. 120.) in
  Alcotest.(check bool) "smooth across hour boundary" true (Float.abs (v2 -. v1) < 0.5)

(* --- CAMPUS short simulation --- *)

let campus_hours ?(users = 25) hours ~start_hour =
  let start = Tw.time_of ~day:Tw.Wed ~hour:start_hour ~minute:0 in
  let stop = start +. (3600. *. float_of_int hours) in
  let records = ref [] in
  let config = { Nt_workload.Email.default_config with users } in
  let stats = Pipeline.simulate_campus ~config ~start ~stop ~sink:(fun r -> records := r :: !records) () in
  (stats, List.rev !records, start, stop)

let test_campus_generates_traffic () =
  let stats, records, start, stop = campus_hours 2 ~start_hour:10 in
  Alcotest.(check bool) "records produced" true (stats.records > 500);
  Alcotest.(check int) "sink saw them all" stats.records (List.length records);
  List.iter
    (fun (r : Record.t) ->
      Alcotest.(check bool) "times in window" true (r.time >= start && r.time <= stop +. 2.))
    records

let test_campus_records_sorted () =
  let _, records, _, _ = campus_hours 2 ~start_hour:10 in
  let rec sorted = function
    | (a : Record.t) :: (b : Record.t) :: tl -> a.time <= b.time && sorted (b :: tl)
    | _ -> true
  in
  Alcotest.(check bool) "sink receives time-sorted records" true (sorted records)

let test_campus_deterministic () =
  let _, r1, _, _ = campus_hours 1 ~start_hour:9 in
  let _, r2, _, _ = campus_hours 1 ~start_hour:9 in
  Alcotest.(check int) "same record count" (List.length r1) (List.length r2);
  List.iter2
    (fun (a : Record.t) (b : Record.t) ->
      Alcotest.(check bool) "identical records" true (Record.to_line a = Record.to_line b))
    r1 r2

let test_campus_locks_zero_length () =
  let _, records, _, _ = campus_hours 2 ~start_hour:11 in
  let lock_creates =
    List.filter
      (fun r ->
        match Record.name r with
        | Some n -> Record.proc r = Nt_nfs.Proc.Create && Names.categorize n = Names.Lock
        | None -> false)
      records
  in
  Alcotest.(check bool) "locks created" true (List.length lock_creates > 5);
  List.iter
    (fun r ->
      Alcotest.(check (option int64)) "lock size 0" (Some 0L) (Record.post_size r))
    lock_creates

let test_campus_all_v3 () =
  let _, records, _, _ = campus_hours 1 ~start_hour:10 in
  List.iter
    (fun (r : Record.t) -> Alcotest.(check int) "campus speaks v3" 3 r.version)
    records

let test_campus_mostly_data_calls () =
  let _, records, _, _ = campus_hours 3 ~start_hour:9 in
  let s = Summary.create () in
  List.iter (Summary.observe s) records;
  Alcotest.(check bool) "data calls dominate (paper Table 1)" true (Summary.data_ops_pct s > 60.);
  Alcotest.(check bool) "reads outnumber writes" true (Summary.read_write_op_ratio s > 1.)

let test_campus_reply_times_follow_calls () =
  let _, records, _, _ = campus_hours 1 ~start_hour:10 in
  List.iter
    (fun (r : Record.t) ->
      match r.reply_time with
      | Some rt -> Alcotest.(check bool) "reply after call" true (rt > r.time)
      | None -> ())
    records

(* --- EECS short simulation --- *)

let eecs_hours ?(users = 15) hours ~start_hour =
  let start = Tw.time_of ~day:Tw.Wed ~hour:start_hour ~minute:0 in
  let stop = start +. (3600. *. float_of_int hours) in
  let records = ref [] in
  let config = { Nt_workload.Research.default_config with users } in
  let stats = Pipeline.simulate_eecs ~config ~start ~stop ~sink:(fun r -> records := r :: !records) () in
  (stats, List.rev !records)

let test_eecs_generates_traffic () =
  let stats, records = eecs_hours 3 ~start_hour:10 in
  Alcotest.(check bool) "records produced" true (stats.records > 200);
  Alcotest.(check int) "all delivered" stats.records (List.length records)

let test_eecs_metadata_dominated () =
  let _, records = eecs_hours 3 ~start_hour:10 in
  let s = Summary.create () in
  List.iter (Summary.observe s) records;
  Alcotest.(check bool) "metadata dominates (paper Table 1)" true (Summary.data_ops_pct s < 50.)

let test_eecs_mixes_versions () =
  let _, records = eecs_hours 3 ~start_hour:10 in
  let versions = List.sort_uniq compare (List.map (fun (r : Record.t) -> r.version) records) in
  Alcotest.(check (list int)) "v2 and v3 clients" [ 2; 3 ] versions

let test_eecs_write_dominated_ops () =
  let _, records = eecs_hours 4 ~start_hour:10 in
  let s = Summary.create () in
  List.iter (Summary.observe s) records;
  Alcotest.(check bool) "write ops outnumber reads (paper)" true
    (Summary.read_write_op_ratio s < 1.0)

(* --- full packet pipeline --- *)

let test_pcap_pipeline_lossless_udp () =
  let start = Tw.time_of ~day:Tw.Wed ~hour:10 ~minute:0 in
  let stop = start +. 1800. in
  let buf = Buffer.create (1 lsl 20) in
  let writer = Nt_net.Pcap.writer_to_buffer buf in
  let config = { Nt_workload.Research.default_config with users = 8 } in
  let stats = Pipeline.eecs_to_pcap ~config ~start ~stop ~writer () in
  Alcotest.(check int) "nothing dropped" 0 stats.packets_dropped;
  let cap_stats, records = Pipeline.capture_pcap (Buffer.contents buf) in
  Alcotest.(check int) "every record recovered" stats.run.records (List.length records);
  Alcotest.(check int) "no orphans" 0 cap_stats.orphan_replies;
  Alcotest.(check int) "no rpc errors" 0 cap_stats.rpc_errors

let test_pcap_pipeline_campus_tcp () =
  let start = Tw.time_of ~day:Tw.Wed ~hour:10 ~minute:0 in
  let stop = start +. 900. in
  let buf = Buffer.create (1 lsl 20) in
  let writer = Nt_net.Pcap.writer_to_buffer buf in
  let config = { Nt_workload.Email.default_config with users = 10 } in
  let stats = Pipeline.campus_to_pcap ~config ~start ~stop ~writer () in
  let cap_stats, records = Pipeline.capture_pcap (Buffer.contents buf) in
  Alcotest.(check int) "every record recovered" stats.run.records (List.length records);
  Alcotest.(check int) "no tcp gaps without loss" 0 cap_stats.tcp_gaps;
  (* The recovered trace carries the same op mix. *)
  let direct = Summary.create () and recovered = Summary.create () in
  let records2 = ref [] in
  ignore (Pipeline.simulate_campus ~config ~start ~stop ~sink:(fun r -> records2 := r :: !records2) ());
  List.iter (Summary.observe direct) !records2;
  List.iter (Summary.observe recovered) records;
  Alcotest.(check int) "same op totals" (Summary.total_ops direct) (Summary.total_ops recovered);
  Alcotest.(check (float 1.) "same bytes read") (Summary.bytes_read direct)
    (Summary.bytes_read recovered)

let test_pcap_pipeline_with_loss () =
  let start = Tw.time_of ~day:Tw.Wed ~hour:10 ~minute:0 in
  let stop = start +. 900. in
  let buf = Buffer.create (1 lsl 20) in
  let writer = Nt_net.Pcap.writer_to_buffer buf in
  let config = { Nt_workload.Email.default_config with users = 10 } in
  let stats = Pipeline.campus_to_pcap ~config ~monitor_loss:0.05 ~start ~stop ~writer () in
  Alcotest.(check bool) "monitor dropped packets" true (stats.packets_dropped > 0);
  let cap_stats, records = Pipeline.capture_pcap (Buffer.contents buf) in
  (* Loss means incomplete recovery, visible in the stats. *)
  Alcotest.(check bool) "some records lost" true (List.length records < stats.run.records);
  Alcotest.(check bool) "loss is accounted" true
    (cap_stats.orphan_replies + cap_stats.lost_replies + cap_stats.tcp_gaps > 0)

(* --- anonymize then analyze --- *)

let test_anonymized_trace_still_analyzable () =
  let _, records, _, _ = campus_hours 2 ~start_hour:10 in
  let anon = Nt_trace.Anonymize.create Nt_trace.Anonymize.default_config in
  let anonymized = List.map (Nt_trace.Anonymize.record anon) records in
  let n_orig = Names.create () and n_anon = Names.create () in
  List.iter (Names.observe n_orig) records;
  List.iter (Names.observe n_anon) anonymized;
  (* Lock accounting survives anonymization because the anonymizer
     preserves the .lock marker — the paper's design requirement. *)
  Alcotest.(check (float 5.) "lock share survives")
    (Names.lock_created_deleted_pct n_orig)
    (Names.lock_created_deleted_pct n_anon);
  (* Volumes unchanged. *)
  let s_orig = Summary.create () and s_anon = Summary.create () in
  List.iter (Summary.observe s_orig) records;
  List.iter (Summary.observe s_anon) anonymized;
  Alcotest.(check (float 0.) "bytes unchanged") (Summary.bytes_read s_orig)
    (Summary.bytes_read s_anon);
  (* UIDs actually got rewritten. *)
  let uids l = List.sort_uniq compare (List.map (fun (r : Record.t) -> r.uid) l) in
  Alcotest.(check bool) "uids differ" true (uids records <> uids anonymized)

(* --- io patterns --- *)

let test_seeky_write_reaches_total () =
  let server = Nt_sim.Server.create ~ip:(Nt_net.Ip_addr.v 10 0 0 2) () in
  let fs = Nt_sim.Server.fs server in
  let node =
    Nt_sim.Sim_fs.create_file fs ~time:0. ~parent:(Nt_sim.Sim_fs.root fs) ~name:"f" ~mode:0o644
      ~uid:0 ~gid:0
  in
  let fh = Nt_sim.Sim_fs.fh_of_node fs node in
  let count = ref 0 in
  let client =
    Nt_sim.Client.create
      (Nt_sim.Client.default_config ~ip:(Nt_net.Ip_addr.v 10 0 0 3) ~version:3)
      ~server ~sink:(fun _ -> incr count) ~rng:(Nt_util.Prng.create 5L)
  in
  let s = Nt_sim.Client.session client ~time:10. ~uid:0 ~gid:0 in
  let rng = Nt_util.Prng.create 6L in
  Io_patterns.seeky_write rng s fh ~total:200_000 ~seg_min:8_000 ~seg_max:16_000 ~jump_prob:0.4
    ~sync:false;
  Alcotest.(check bool) "writes happened" true (!count > 10);
  Alcotest.(check int64) "file reaches total" 200_000L (Nt_sim.Sim_fs.size node)

let () =
  Alcotest.run "nt_workload"
    [
      ( "diurnal",
        [
          Alcotest.test_case "peak vs night" `Quick test_diurnal_peak_vs_night;
          Alcotest.test_case "weekend quieter" `Quick test_diurnal_weekend_quieter;
          Alcotest.test_case "weekly mean" `Quick test_diurnal_mean_near_one;
          Alcotest.test_case "continuous" `Quick test_diurnal_continuous;
        ] );
      ( "campus",
        [
          Alcotest.test_case "generates traffic" `Quick test_campus_generates_traffic;
          Alcotest.test_case "sorted output" `Quick test_campus_records_sorted;
          Alcotest.test_case "deterministic" `Quick test_campus_deterministic;
          Alcotest.test_case "locks zero length" `Quick test_campus_locks_zero_length;
          Alcotest.test_case "all v3" `Quick test_campus_all_v3;
          Alcotest.test_case "data-call dominated" `Quick test_campus_mostly_data_calls;
          Alcotest.test_case "reply after call" `Quick test_campus_reply_times_follow_calls;
        ] );
      ( "eecs",
        [
          Alcotest.test_case "generates traffic" `Quick test_eecs_generates_traffic;
          Alcotest.test_case "metadata dominated" `Quick test_eecs_metadata_dominated;
          Alcotest.test_case "mixes v2/v3" `Quick test_eecs_mixes_versions;
          Alcotest.test_case "write dominated" `Quick test_eecs_write_dominated_ops;
        ] );
      ( "pipeline",
        [
          Alcotest.test_case "udp lossless roundtrip" `Quick test_pcap_pipeline_lossless_udp;
          Alcotest.test_case "tcp roundtrip" `Quick test_pcap_pipeline_campus_tcp;
          Alcotest.test_case "monitor loss accounted" `Quick test_pcap_pipeline_with_loss;
        ] );
      ( "integration",
        [
          Alcotest.test_case "anonymize then analyze" `Quick test_anonymized_trace_still_analyzable;
          Alcotest.test_case "seeky write total" `Quick test_seeky_write_reaches_total;
        ] );
    ]
