(** LEB128 varints over [Buffer]/[string], shared by the nttb/1 frame
    codec.

    Three encodings cover every scalar a {!Nt_trace.Record.t} carries:
    unsigned LEB128 for native ints treated as 63-bit unsigned words,
    zigzag + LEB128 for signed native ints, and unsigned LEB128 over
    the raw 64-bit pattern for [int64] (which also carries float bit
    patterns). All three are total — any value round-trips, including
    [min_int] and negative [int64] (at the worst-case 9- and 10-byte
    cost). *)

exception Corrupt
(** The library's counted failure channel: readers raise it on
    overlong or truncated input, and the frame decoder catches it at
    the frame boundary and turns it into a counter — it never escapes
    {!Tbin.Decoder}. *)

type cursor = { s : string; mutable pos : int; limit : int }
(** Read position into an immutable payload slice; [limit] is
    exclusive. *)

val cursor : ?pos:int -> ?limit:int -> string -> cursor

val u8 : cursor -> int
(** One raw byte; raises {!Corrupt} past [limit]. *)

val write_uv : Buffer.t -> int -> unit
(** Unsigned LEB128 of a native int's 63-bit pattern (1–9 bytes). *)

val read_uv : cursor -> int
(** Inverse of {!write_uv}; raises {!Corrupt} on truncation or more
    than 9 continuation bytes. *)

val write_zz : Buffer.t -> int -> unit
(** Zigzag-mapped signed int: small magnitudes of either sign stay
    short. *)

val read_zz : cursor -> int

val write_uv64 : Buffer.t -> int64 -> unit
(** Unsigned LEB128 of the raw 64-bit pattern (1–10 bytes). *)

val read_uv64 : cursor -> int64
