bin/nfsanon.mli:
