(* Merge-law coverage: every interface exposing an accumulator merge
   (merge : t -> t -> t) must have a merge-law property registered in
   the test suite, so the byte-identical --jobs N guarantee never rests
   on an untested merge.

   Requirement side: scan each in-scope .cmti for a value named [merge]
   whose type is t -> t -> t over one local constructor.

   Coverage side: scan the configured test units' .cmt for applications
   of the registration function (default [prop_merge_laws]) and collect
   every [<Module>.merge] identifier mentioned in the arguments.  Local
   module aliases (module Summary = Nt_analysis.Summary) are expanded
   one level, which is exactly the idiom the test files use. *)

(* Footprint side: the same interfaces must also expose state-footprint
   accounting (a [footprint] value consuming [t]) and have it registered
   under the footprint property (default [prop_footprint]); otherwise the
   nt_state_cards/nt_state_words gauges silently omit the component. *)

type requirement = { req_dotted : string; req_loc : Location.t; req_footprint : bool }

let same_head a b c =
  match (Types.get_desc a, Types.get_desc b, Types.get_desc c) with
  | Types.Tconstr (pa, _, _), Types.Tconstr (pb, _, _), Types.Tconstr (pc, _, _) ->
      let na = Path.name pa in
      na = Path.name pb && na = Path.name pc && Path.last pa = "t"
  | _ -> false

(* A [footprint] declaration counts as long as it consumes the local [t];
   the result shape (record, pair, abstract) is the module's business. *)
let has_footprint (sg : Typedtree.signature) =
  List.exists
    (fun (item : Typedtree.signature_item) ->
      match item.sig_desc with
      | Tsig_value vd when Ident.name vd.val_id = "footprint" -> (
          match Types.get_desc vd.val_val.Types.val_type with
          | Types.Tarrow (_, a, _, _) -> (
              match Types.get_desc a with
              | Types.Tconstr (pa, _, _) -> Path.last pa = "t"
              | _ -> false)
          | _ -> false)
      | _ -> false)
    sg.sig_items

let merge_requirement (u : Loader.unit_info) =
  match u.payload with
  | Loader.Impl _ -> None
  | Loader.Intf sg ->
      List.find_map
        (fun (item : Typedtree.signature_item) ->
          match item.sig_desc with
          | Tsig_value vd when Ident.name vd.val_id = "merge" -> (
              match Types.get_desc vd.val_val.Types.val_type with
              | Types.Tarrow (_, a, rest, _) -> (
                  match Types.get_desc rest with
                  | Types.Tarrow (_, b, c, _) when same_head a b c ->
                      Some
                        {
                          req_dotted = u.dotted;
                          req_loc = vd.val_loc;
                          req_footprint = has_footprint sg;
                        }
                  | _ -> None)
              | _ -> None)
          | _ -> None)
        sg.sig_items

(* --- coverage extraction from a test unit --- *)

let module_aliases (str : Typedtree.structure) =
  let tbl = Hashtbl.create 16 in
  let rec of_expr (me : Typedtree.module_expr) =
    match me.mod_desc with
    | Tmod_ident (p, _) -> Some (Path.name p)
    | Tmod_constraint (me, _, _, _) -> of_expr me
    | _ -> None
  in
  List.iter
    (fun (item : Typedtree.structure_item) ->
      match item.str_desc with
      | Tstr_module mb -> (
          match (mb.mb_id, of_expr mb.mb_expr) with
          | Some id, Some target -> Hashtbl.replace tbl (Ident.name id) target
          | _ -> ())
      | _ -> ())
    str.str_items;
  tbl

let expand_alias aliases dotted =
  match String.index_opt dotted '.' with
  | None -> ( match Hashtbl.find_opt aliases dotted with Some t -> t | None -> dotted)
  | Some i -> (
      let head = String.sub dotted 0 i in
      let rest = String.sub dotted i (String.length dotted - i) in
      match Hashtbl.find_opt aliases head with Some t -> t ^ rest | None -> dotted)

let idents_in ~last (e : Typedtree.expression) =
  let acc = ref [] in
  let expr sub (e : Typedtree.expression) =
    (match e.exp_desc with
    | Texp_ident (p, _, _) when Path.last p = last -> (
        match p with
        | Path.Pdot (prefix, _) -> acc := Path.name prefix :: !acc
        | _ -> ())
    | _ -> ());
    Tast_iterator.default_iterator.expr sub e
  in
  let it = { Tast_iterator.default_iterator with expr } in
  it.expr it e;
  !acc

let registrations ~prop_fn ~last (str : Typedtree.structure) =
  let aliases = module_aliases str in
  let acc = ref [] in
  let expr sub (e : Typedtree.expression) =
    (match e.exp_desc with
    | Texp_apply ({ exp_desc = Texp_ident (p, _, _); _ }, args)
      when Syntax.path_last p = prop_fn ->
        List.iter
          (fun (_, arg) ->
            match arg with
            | Some a ->
                List.iter
                  (fun prefix -> acc := expand_alias aliases prefix :: !acc)
                  (idents_in ~last a)
            | None -> ())
          args
    | _ -> ());
    Tast_iterator.default_iterator.expr sub e
  in
  let it = { Tast_iterator.default_iterator with expr } in
  it.structure it str;
  !acc

let check (sink : Finding.sink) ~in_scope ~test_units ~prop_fn ~footprint_prop_fn
    (units : Loader.unit_info list) =
  let requirements =
    List.filter_map
      (fun u -> if in_scope u.Loader.dotted then merge_requirement u else None)
      units
  in
  let test_impls =
    List.filter
      (fun (u : Loader.unit_info) ->
        Loader.is_impl u
        && List.exists (fun t -> Syntax.unit_matches ~unit:u.name t) test_units)
      units
  in
  let extract ~prop_fn ~last =
    List.concat_map
      (fun (u : Loader.unit_info) ->
        match u.payload with
        | Loader.Impl str -> registrations ~prop_fn ~last str
        | Loader.Intf _ -> [])
      test_impls
  in
  let covered = extract ~prop_fn ~last:"merge" in
  let fp_covered = extract ~prop_fn:footprint_prop_fn ~last:"footprint" in
  List.iter
    (fun req ->
      if not (List.mem req.req_dotted covered) then
        sink.emit Rule.merge_law_missing req.req_loc
          (Printf.sprintf
             "%s.merge has no %s registration in the test suite (add associativity and \
              neutral-element properties)"
             req.req_dotted prop_fn);
      if not req.req_footprint then
        sink.emit Rule.footprint_missing req.req_loc
          (Printf.sprintf
             "%s exposes merge but no footprint value over t; the state-accounting gauges \
              cannot see this accumulator"
             req.req_dotted)
      else if not (List.mem req.req_dotted fp_covered) then
        sink.emit Rule.footprint_missing req.req_loc
          (Printf.sprintf
             "%s.footprint has no %s registration in the test suite (assert words >= cards \
              and words > 0 on built states)"
             req.req_dotted footprint_prop_fn))
    requirements;
  (List.map (fun r -> r.req_dotted) requirements, covered, List.length test_impls)
