lib/analysis/nvram.mli: Nt_trace
