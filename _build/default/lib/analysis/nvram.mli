(** NVRAM delayed-write ablation (paper §6.1/§7).

    The paper concludes that "mechanisms for delaying writes, such as
    NVRAM, would improve performance for both the CAMPUS and EECS
    workloads" because so many blocks die young. This module quantifies
    that: it simulates a battery-backed write buffer in front of the
    disk and counts how many block writes are absorbed — overwritten or
    deleted while still buffered — and so never reach the platters.

    A block enters the buffer when written and leaves when its flush
    deadline expires or the buffer overflows (oldest flushed first).
    A write to a still-buffered block replaces it in place: the earlier
    version is absorbed. *)

type config = {
  capacity_bytes : int;
  flush_delay : float;  (** seconds a dirty block may linger *)
  block : int;
}

type t

val create : config -> t

val observe : t -> Nt_trace.Record.t -> unit
(** Feed records in time order; WRITE, SETATTR(truncate) and REMOVE
    affect the buffer (removes need name bindings, learned from
    lookups/creates like the lifetime analysis). *)

type result = {
  block_writes : int;  (** dirty-block versions produced by the workload *)
  absorbed : int;  (** versions that died in the buffer *)
  disk_writes : int;  (** versions that reached the disk *)
  absorbed_pct : float;
  overflow_flushes : int;  (** early flushes forced by capacity *)
}

val result : t -> result
(** Flushes everything still buffered (counted as disk writes). *)
