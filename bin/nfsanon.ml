(* nfsanon: anonymize a text trace the way the paper's tools do —
   consistent random mappings for names, UIDs, GIDs and addresses, with
   structural markers preserved.

   Example: nfsanon --seed 12345 raw.trace -o anon.trace *)

open Cmdliner

let run input output seed omit obs_opts =
  let config =
    if omit then Nt_trace.Anonymize.omit_config else Nt_trace.Anonymize.default_config
  in
  let obs = Nt_obs.Obs.create () in
  let timeline = Obs_cli.timeline obs_opts obs in
  let sampler = Nt_obs.Sampler.create ~interval:0.05 obs in
  let prog = Obs_cli.progress obs_opts "nfsanon" in
  let anon =
    Nt_trace.Anonymize.create ~obs ?seed:(Option.map Int64.of_string seed) config
  in
  let c_records = Nt_obs.Obs.counter obs ~help:"records anonymized" "anon.records" in
  let ic = if input = "-" then stdin else open_in input in
  let oc = if output = "-" then stdout else open_out output in
  let n = ref 0 in
  Nt_obs.Obs.with_span obs "anonymize" (fun () ->
      Seq.iter
        (fun r ->
          output_string oc (Nt_trace.Record.to_line (Nt_trace.Anonymize.record anon r));
          output_char oc '\n';
          incr n;
          Nt_obs.Obs.inc c_records;
          Nt_obs.Sampler.tick sampler;
          Obs_cli.tick prog ~stage:"anonymize" 1)
        (Nt_trace.Record.read_channel ic));
  if input <> "-" then close_in ic;
  if output <> "-" then close_out oc;
  Printf.eprintf "nfsanon: %d records, %d distinct name components mapped\n%!" !n
    (Nt_trace.Anonymize.mapped_names anon);
  Obs_cli.finish prog;
  Obs_cli.dump obs_opts obs;
  Obs_cli.dump_timeline ~sampler obs_opts timeline;
  0

let input =
  Arg.(
    required & pos 0 (some string) None & info [] ~docv:"TRACE" ~doc:"Input trace (- for stdin).")

let output =
  Arg.(
    value & opt string "-" & info [ "o"; "output" ] ~docv:"FILE" ~doc:"Output file (- for stdout).")

let seed =
  Arg.(
    value
    & opt (some string) None
    & info [ "seed" ] ~docv:"INT64"
        ~doc:"Secret mapping seed. Keep it private: publishing it enables known-text attacks.")

let omit =
  Arg.(value & flag & info [ "omit" ] ~doc:"Drop names/UIDs/GIDs/IPs entirely instead of mapping.")

let cmd =
  Cmd.v
    (Cmd.info "nfsanon" ~doc:"Anonymize an NFS trace for sharing")
    Term.(const run $ input $ output $ seed $ omit $ Obs_cli.term)

let () = exit (Cmd.eval' cmd)
