lib/nfs/types.ml: Float Printf
