lib/sim/server.ml: Int64 List Nt_net Nt_nfs Sim_fs String
