(* nfsstats: run the paper's analyses over a saved text trace.

   Example: nfsstats --analysis summary,runs,names campus.trace *)

open Cmdliner

let load prog input =
  let ic = if input = "-" then stdin else open_in input in
  let records =
    List.of_seq
      (Seq.map
         (fun r ->
           Obs_cli.tick prog ~stage:"load" 1;
           r)
         (Nt_trace.Record.read_channel ic))
  in
  if input <> "-" then close_in ic;
  records

let print_summary records =
  let s = Nt_analysis.Summary.create () in
  List.iter (Nt_analysis.Summary.observe s) records;
  let module T = Nt_util.Tables in
  T.print ~title:"Summary" ~header:[ "statistic"; "value" ]
    [
      [ "records"; string_of_int (Nt_analysis.Summary.total_ops s) ];
      [ "trace span"; T.fmt_duration (Nt_analysis.Summary.days s *. 86400.) ];
      [ "data read"; T.fmt_bytes (Nt_analysis.Summary.bytes_read s) ];
      [ "data written"; T.fmt_bytes (Nt_analysis.Summary.bytes_written s) ];
      [ "read ops"; string_of_int (Nt_analysis.Summary.read_ops s) ];
      [ "write ops"; string_of_int (Nt_analysis.Summary.write_ops s) ];
      [ "R/W op ratio"; T.fmt_float (Nt_analysis.Summary.read_write_op_ratio s) ];
      [ "R/W byte ratio"; T.fmt_float (Nt_analysis.Summary.read_write_byte_ratio s) ];
      [ "data calls"; T.fmt_pct (Nt_analysis.Summary.data_ops_pct s) ];
      [ "unique files"; string_of_int (Nt_analysis.Summary.unique_files_accessed s) ];
    ];
  print_newline ();
  Nt_util.Tables.print ~title:"Calls by procedure" ~header:[ "procedure"; "calls" ]
    (List.map
       (fun (p, n) -> [ Nt_nfs.Proc.to_string p; string_of_int n ])
       (Nt_analysis.Summary.top_procs s))

let print_runs records =
  let log = Nt_analysis.Io_log.create () in
  List.iter (Nt_analysis.Io_log.observe log) records;
  let t = Nt_analysis.Runs.table3 (Nt_analysis.Runs.analyze ~window:0.01 ~jump_blocks:10 log) in
  let module T = Nt_util.Tables in
  let f = T.fmt_float ~decimals:1 in
  T.print ~title:"Run patterns (processed: 10ms window, 10-block jumps)"
    ~header:[ "pattern"; "%" ]
    [
      [ "total runs"; string_of_int t.total_runs ];
      [ "reads (% total)"; f t.reads_pct ];
      [ "  entire (% read)"; f t.read.entire_pct ];
      [ "  sequential (% read)"; f t.read.sequential_pct ];
      [ "  random (% read)"; f t.read.random_pct ];
      [ "writes (% total)"; f t.writes_pct ];
      [ "  entire (% write)"; f t.write.entire_pct ];
      [ "  sequential (% write)"; f t.write.sequential_pct ];
      [ "  random (% write)"; f t.write.random_pct ];
      [ "read-write (% total)"; f t.rw_pct ];
    ]

let print_names records =
  let n = Nt_analysis.Names.create () in
  List.iter (Nt_analysis.Names.observe n) records;
  let module T = Nt_util.Tables in
  T.print ~title:"File categories (by last pathname component)"
    ~header:[ "category"; "files"; "created+deleted"; "median size"; "read-only %" ]
    (List.map
       (fun (cat, (s : Nt_analysis.Names.category_stats)) ->
         [
           Nt_analysis.Names.category_to_string cat;
           string_of_int s.files_seen;
           string_of_int s.created_deleted;
           T.fmt_bytes s.median_size;
           T.fmt_pct s.read_only_pct;
         ])
       (Nt_analysis.Names.stats n));
  Printf.printf "locks among created+deleted files: %.1f%%\n"
    (Nt_analysis.Names.lock_created_deleted_pct n)

let print_hourly records =
  let h = Nt_analysis.Hourly.create () in
  List.iter (Nt_analysis.Hourly.observe h) records;
  Nt_util.Tables.print ~title:"Hourly activity" ~header:[ "hour"; "ops"; "reads"; "writes"; "R/W" ]
    (List.filter_map
       (fun (p : Nt_analysis.Hourly.hour_point) ->
         if p.ops = 0 then None
         else
           Some
             [
               string_of_int p.hour;
               string_of_int p.ops;
               string_of_int p.reads;
               string_of_int p.writes;
               Nt_util.Tables.fmt_float (Nt_analysis.Hourly.rw_ratio p);
             ])
       (Nt_analysis.Hourly.series h))

let analysis_name = function
  | `Summary -> "summary"
  | `Runs -> "runs"
  | `Names -> "names"
  | `Hourly -> "hourly"

let run input analyses lint obs_opts =
  let obs = Nt_obs.Obs.create () in
  let prog = Obs_cli.progress obs_opts "nfsstats" in
  let records = Nt_obs.Obs.with_span obs "load" (fun () -> load prog input) in
  Nt_obs.Obs.add
    (Nt_obs.Obs.counter obs ~help:"trace records loaded" "stats.records")
    (List.length records);
  Printf.eprintf "nfsstats: %d records loaded\n%!" (List.length records);
  if lint then begin
    let l = Nt_core.Pipeline.lint_records ~obs records in
    List.iter
      (fun f -> Printf.eprintf "nfsstats: %s\n" (Nt_lint.Finding.to_string f))
      (Nt_lint.Engine.findings l);
    Printf.eprintf "nfsstats: lint: %d error(s), %d warning(s)\n%!"
      (Nt_lint.Engine.severity_count l Nt_lint.Rule.Error)
      (Nt_lint.Engine.severity_count l Nt_lint.Rule.Warn)
  end;
  List.iter
    (fun a ->
      let name = analysis_name a in
      Obs_cli.set_stage prog name;
      Nt_obs.Obs.add
        (Nt_obs.Obs.counter obs
           ~labels:[ ("pass", name) ]
           ~help:"records fed to each analysis pass" "analysis.records")
        (List.length records);
      Nt_obs.Obs.with_span obs ("analyze." ^ name) (fun () ->
          match a with
          | `Summary -> print_summary records
          | `Runs -> print_runs records
          | `Names -> print_names records
          | `Hourly -> print_hourly records);
      print_newline ())
    analyses;
  Obs_cli.finish prog;
  Obs_cli.dump obs_opts obs;
  0

let input =
  Arg.(
    required & pos 0 (some string) None & info [] ~docv:"TRACE" ~doc:"Input trace (- for stdin).")

let analyses =
  let kind =
    Arg.enum [ ("summary", `Summary); ("runs", `Runs); ("names", `Names); ("hourly", `Hourly) ]
  in
  Arg.(
    value
    & opt (list kind) [ `Summary ]
    & info [ "a"; "analysis" ] ~docv:"LIST" ~doc:"Analyses to run: summary, runs, names, hourly.")

let lint =
  Arg.(
    value & flag
    & info [ "lint" ]
        ~doc:
          "Run the static checker over the loaded records before analyzing; findings go to \
           stderr so suspicious traces are flagged next to the numbers they distort.")

let cmd =
  Cmd.v
    (Cmd.info "nfsstats" ~doc:"Analyze a saved NFS trace")
    Term.(const run $ input $ analyses $ lint $ Obs_cli.term)

let () = exit (Cmd.eval' cmd)
