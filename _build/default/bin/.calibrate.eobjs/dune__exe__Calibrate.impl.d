bin/calibrate.ml: List Nt_analysis Nt_core Nt_util Printf
