module E = Nt_xdr.Encode
module D = Nt_xdr.Decode

type auth_flavor =
  | Auth_null
  | Auth_unix of { stamp : int; machine : string; uid : int; gid : int; gids : int list }
  | Auth_other of int * string

type call = {
  xid : int;
  rpcvers : int;
  prog : int;
  vers : int;
  proc : int;
  cred : auth_flavor;
  verf : auth_flavor;
}

type reject_reason = Rpc_mismatch of int * int | Auth_error of int

type accept_status =
  | Success
  | Prog_unavail
  | Prog_mismatch of int * int
  | Proc_unavail
  | Garbage_args
  | System_err

type reply = { xid : int; verf : auth_flavor; status : reply_status }
and reply_status = Accepted of accept_status | Denied of reject_reason

type msg = Call of call | Reply of reply

let nfs_program = 100003
let msg_type_call = 0
let msg_type_reply = 1

let encode_auth e = function
  | Auth_null ->
      E.uint32 e 0;
      E.uint32 e 0
  | Auth_unix { stamp; machine; uid; gid; gids } ->
      E.uint32 e 1;
      let body = E.create ~initial_size:64 () in
      E.uint32 body stamp;
      E.string body machine;
      E.uint32 body uid;
      E.uint32 body gid;
      E.array body (E.uint32 body) gids;
      E.opaque e (E.contents body)
  | Auth_other (flavor, body) ->
      E.uint32 e flavor;
      E.opaque e body

let decode_auth d =
  let flavor = D.uint32 d in
  let body = D.opaque d in
  match flavor with
  | 0 -> Auth_null
  | 1 ->
      let bd = D.of_string body in
      let stamp = D.uint32 bd in
      let machine = D.string bd in
      let uid = D.uint32 bd in
      let gid = D.uint32 bd in
      let gids = D.array bd D.uint32 in
      Auth_unix { stamp; machine; uid; gid; gids }
  | n -> Auth_other (n, body)

let encode_call e (c : call) =
  E.uint32 e c.xid;
  E.uint32 e msg_type_call;
  E.uint32 e c.rpcvers;
  E.uint32 e c.prog;
  E.uint32 e c.vers;
  E.uint32 e c.proc;
  encode_auth e c.cred;
  encode_auth e c.verf

let encode_reply e (r : reply) =
  E.uint32 e r.xid;
  E.uint32 e msg_type_reply;
  match r.status with
  | Accepted st -> (
      E.uint32 e 0;
      encode_auth e r.verf;
      match st with
      | Success -> E.uint32 e 0
      | Prog_unavail -> E.uint32 e 1
      | Prog_mismatch (lo, hi) ->
          E.uint32 e 2;
          E.uint32 e lo;
          E.uint32 e hi
      | Proc_unavail -> E.uint32 e 3
      | Garbage_args -> E.uint32 e 4
      | System_err -> E.uint32 e 5)
  | Denied reason -> (
      E.uint32 e 1;
      match reason with
      | Rpc_mismatch (lo, hi) ->
          E.uint32 e 0;
          E.uint32 e lo;
          E.uint32 e hi
      | Auth_error stat ->
          E.uint32 e 1;
          E.uint32 e stat)

let decode s ~pos ~len =
  let d = D.of_string ~pos ~len s in
  let xid = D.uint32 d in
  match D.uint32 d with
  | 0 ->
      let rpcvers = D.uint32 d in
      if rpcvers <> 2 then raise (D.Error (Printf.sprintf "unsupported RPC version %d" rpcvers));
      let prog = D.uint32 d in
      let vers = D.uint32 d in
      let proc = D.uint32 d in
      let cred = decode_auth d in
      let verf = decode_auth d in
      (Call { xid; rpcvers; prog; vers; proc; cred; verf }, D.pos d)
  | 1 -> (
      match D.uint32 d with
      | 0 -> (
          let verf = decode_auth d in
          match D.uint32 d with
          | 0 -> (Reply { xid; verf; status = Accepted Success }, D.pos d)
          | 1 -> (Reply { xid; verf; status = Accepted Prog_unavail }, D.pos d)
          | 2 ->
              let lo = D.uint32 d in
              let hi = D.uint32 d in
              (Reply { xid; verf; status = Accepted (Prog_mismatch (lo, hi)) }, D.pos d)
          | 3 -> (Reply { xid; verf; status = Accepted Proc_unavail }, D.pos d)
          | 4 -> (Reply { xid; verf; status = Accepted Garbage_args }, D.pos d)
          | 5 -> (Reply { xid; verf; status = Accepted System_err }, D.pos d)
          | n -> raise (D.Error (Printf.sprintf "bad accept status %d" n)))
      | 1 -> (
          match D.uint32 d with
          | 0 ->
              let lo = D.uint32 d in
              let hi = D.uint32 d in
              (Reply { xid; verf = Auth_null; status = Denied (Rpc_mismatch (lo, hi)) }, D.pos d)
          | 1 ->
              let stat = D.uint32 d in
              (Reply { xid; verf = Auth_null; status = Denied (Auth_error stat) }, D.pos d)
          | n -> raise (D.Error (Printf.sprintf "bad reject status %d" n)))
      | n -> raise (D.Error (Printf.sprintf "bad reply status %d" n)))
  | n -> raise (D.Error (Printf.sprintf "bad message type %d" n))
