type 'a t = {
  buf : 'a option array;
  mutable head : int;  (* next slot to pop *)
  mutable len : int;
}

let create ~capacity =
  if capacity <= 0 then invalid_arg "Ingest.create: capacity <= 0";
  { buf = Array.make capacity None; head = 0; len = 0 }

let capacity t = Array.length t.buf
let length t = t.len
let is_empty t = t.len = 0

let pop t =
  if t.len = 0 then None
  else begin
    let v = t.buf.(t.head) in
    t.buf.(t.head) <- None;
    t.head <- (t.head + 1) mod Array.length t.buf;
    t.len <- t.len - 1;
    v
  end

let push t v =
  let cap = Array.length t.buf in
  let shed = if t.len = cap then pop t else None in
  let tail = (t.head + t.len) mod cap in
  t.buf.(tail) <- Some v;
  t.len <- t.len + 1;
  shed

let footprint ?(entry_words = 24) t =
  Nt_obs.Footprint.v ~cards:t.len ~words:(8 + Array.length t.buf + (t.len * entry_words))
