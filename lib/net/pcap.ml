type packet = { time : float; orig_len : int; data : string }

exception Bad_format of string

let magic_us = 0xA1B2C3D4
let magic_ns = 0xA1B23C4D
let linktype_ethernet = 1

(* --- writing (little-endian, microsecond) --- *)

type sink = To_buffer of Buffer.t | To_channel of out_channel

type writer = { sink : sink; snaplen : int }

let put16le buf v =
  Buffer.add_char buf (Char.chr (v land 0xFF));
  Buffer.add_char buf (Char.chr ((v lsr 8) land 0xFF))

let put32le buf v =
  put16le buf (v land 0xFFFF);
  put16le buf ((v lsr 16) land 0xFFFF)

let global_header snaplen =
  let buf = Buffer.create 24 in
  put32le buf magic_us;
  put16le buf 2;
  put16le buf 4;
  put32le buf 0 (* thiszone *);
  put32le buf 0 (* sigfigs *);
  put32le buf snaplen;
  put32le buf linktype_ethernet;
  Buffer.contents buf

let emit w s =
  match w.sink with To_buffer b -> Buffer.add_string b s | To_channel oc -> output_string oc s

let make_writer ?(snaplen = 65535) sink =
  let w = { sink; snaplen } in
  emit w (global_header snaplen);
  w

let writer_to_buffer ?snaplen b = make_writer ?snaplen (To_buffer b)
let writer_to_channel ?snaplen oc = make_writer ?snaplen (To_channel oc)

let write w ~time data =
  let sec = int_of_float (Float.floor time) in
  let usec = int_of_float (Float.round ((time -. Float.of_int sec) *. 1e6)) in
  let sec, usec = if usec >= 1_000_000 then (sec + 1, usec - 1_000_000) else (sec, usec) in
  let incl = min (String.length data) w.snaplen in
  let buf = Buffer.create (16 + incl) in
  put32le buf sec;
  put32le buf usec;
  put32le buf incl;
  put32le buf (String.length data);
  Buffer.add_substring buf data 0 incl;
  emit w (Buffer.contents buf)

(* --- reading --- *)

type source = From_string of { data : string; mutable pos : int } | From_channel of in_channel

type read_stats = {
  records : int;
  salvaged : int;
  skipped_bytes : int;
  resyncs : int;
  truncated_tail : bool;
}

(* Loss accounting lives on the obs registry (capture.* namespace);
   [read_stats] reads the counters back so existing callers see the
   same numbers a --metrics snapshot reports. *)
type reader = {
  source : source;
  big_endian : bool;
  nanosecond : bool;
  salvage : bool;
  mutable stash : string;  (* bytes read from the source but not yet consumed *)
  c_records : Nt_obs.Obs.counter;
  c_salvaged : Nt_obs.Obs.counter;
  c_skipped : Nt_obs.Obs.counter;
  c_resyncs : Nt_obs.Obs.counter;
  c_truncated : Nt_obs.Obs.counter;
  mutable truncated_tail : bool;
  mutable last_sec : int;  (* timestamp of the last good record, for resync *)
}

(* Read up to [n] bytes, consuming the stash first; shorter only at EOF. *)
let read_upto r n =
  let from_stash = min n (String.length r.stash) in
  let head = String.sub r.stash 0 from_stash in
  r.stash <- String.sub r.stash from_stash (String.length r.stash - from_stash);
  let want = n - from_stash in
  if want = 0 then head
  else
    match r.source with
    | From_string s ->
        let got = min want (String.length s.data - s.pos) in
        let tail = String.sub s.data s.pos got in
        s.pos <- s.pos + got;
        head ^ tail
    | From_channel ic ->
        let b = Bytes.create want in
        let rec fill off =
          if off >= want then want
          else
            let got = input ic b off (want - off) in
            if got = 0 then off else fill (off + got)
        in
        let got = fill 0 in
        head ^ Bytes.sub_string b 0 got

let u32 ~be s pos =
  let b i = Char.code s.[pos + i] in
  if be then (b 0 lsl 24) lor (b 1 lsl 16) lor (b 2 lsl 8) lor b 3
  else (b 3 lsl 24) lor (b 2 lsl 16) lor (b 1 lsl 8) lor b 0

let read_exact source n =
  match source with
  | From_string s ->
      if String.length s.data - s.pos < n then None
      else begin
        let r = String.sub s.data s.pos n in
        s.pos <- s.pos + n;
        Some r
      end
  | From_channel ic -> (
      let b = Bytes.create n in
      try
        really_input ic b 0 n;
        Some (Bytes.to_string b)
      with End_of_file -> None)

let make_reader ?obs ~salvage source =
  let obs = match obs with Some o -> o | None -> Nt_obs.Obs.create () in
  match read_exact source 24 with
  | None -> raise (Bad_format "missing global header")
  | Some hdr ->
      let try_magic be =
        let m = u32 ~be hdr 0 in
        if m = magic_us then Some (be, false)
        else if m = magic_ns then Some (be, true)
        else None
      in
      let big_endian, nanosecond =
        match try_magic true with
        | Some r -> r
        | None -> (
            match try_magic false with
            | Some r -> r
            | None -> raise (Bad_format "bad magic number"))
      in
      let linktype = u32 ~be:big_endian hdr 20 in
      if linktype <> linktype_ethernet then
        raise (Bad_format (Printf.sprintf "unsupported linktype %d" linktype));
      {
        source;
        big_endian;
        nanosecond;
        salvage;
        stash = "";
        c_records =
          Nt_obs.Obs.counter obs ~help:"pcap records successfully decoded" "capture.pcap_records";
        c_salvaged =
          Nt_obs.Obs.counter obs ~help:"pcap records recovered after resync"
            "capture.salvaged_records";
        c_skipped =
          Nt_obs.Obs.counter obs ~help:"bytes discarded while resyncing or at a cut-off tail"
            "capture.skipped_bytes";
        c_resyncs =
          Nt_obs.Obs.counter obs ~help:"times the salvage scanner re-acquired a record boundary"
            "capture.resyncs";
        c_truncated =
          Nt_obs.Obs.counter obs ~help:"captures that ended mid-record" "capture.truncated_tails";
        truncated_tail = false;
        last_sec = 0;
      }

let reader_of_string ?obs ?(salvage = false) s =
  make_reader ?obs ~salvage (From_string { data = s; pos = 0 })

let reader_of_channel ?obs ?(salvage = false) ic = make_reader ?obs ~salvage (From_channel ic)

let read_stats r =
  {
    records = Nt_obs.Obs.value r.c_records;
    salvaged = Nt_obs.Obs.value r.c_salvaged;
    skipped_bytes = Nt_obs.Obs.value r.c_skipped;
    resyncs = Nt_obs.Obs.value r.c_resyncs;
    truncated_tail = r.truncated_tail;
  }

let mark_truncated r =
  if not r.truncated_tail then begin
    r.truncated_tail <- true;
    Nt_obs.Obs.inc r.c_truncated
  end

(* A header is plausible when its lengths are frame-sized and its
   fractional timestamp is in range — the resync test applied to each
   byte offset while salvaging past a corrupt record. *)
let max_salvage_record = 0x100000

let plausible r ~sec ~frac ~incl ~orig_len =
  (* A captured frame is never empty: incl = 0 would make runs of zero
     bytes (common inside NFS payloads) look like valid records. 14 is
     the bare Ethernet header. *)
  incl >= 14
  && incl <= max_salvage_record && orig_len >= incl
  && orig_len <= max_salvage_record
  && frac < (if r.nanosecond then 1_000_000_000 else 1_000_000)
  && (r.last_sec = 0 || abs (sec - r.last_sec) <= 30 * 86400)

let parse_header r hdr =
  let be = r.big_endian in
  (u32 ~be hdr 0, u32 ~be hdr 4, u32 ~be hdr 8, u32 ~be hdr 12)

(* Slide a 16-byte window one byte forward looking for the next
   plausible record header; everything skipped is counted. *)
let resync r hdr =
  let window = ref hdr in
  let result = ref None in
  let continue = ref true in
  while !continue do
    let next = read_upto r 1 in
    if String.length next = 0 then begin
      (* EOF inside the corrupt region: the tail is unrecoverable. *)
      Nt_obs.Obs.add r.c_skipped (String.length !window);
      mark_truncated r;
      continue := false
    end
    else begin
      Nt_obs.Obs.inc r.c_skipped;
      window := String.sub !window 1 15 ^ next;
      let sec, frac, incl, orig_len = parse_header r !window in
      if plausible r ~sec ~frac ~incl ~orig_len then begin
        Nt_obs.Obs.inc r.c_resyncs;
        result := Some !window;
        continue := false
      end
    end
  done;
  !result

let accept r ~salvaged ~sec ~frac ~orig_len data =
  Nt_obs.Obs.inc r.c_records;
  if salvaged then Nt_obs.Obs.inc r.c_salvaged;
  r.last_sec <- sec;
  let scale = if r.nanosecond then 1e-9 else 1e-6 in
  Some { time = Float.of_int sec +. (Float.of_int frac *. scale); orig_len; data }

(* Keep resyncing until a plausible header is followed by a full
   payload that ends at a record boundary — EOF or another plausible
   header. The double-validation rejects false positives that a single
   header test lets through (byte patterns inside packet payloads can
   parse as headers with large lengths and would swallow real records).
   Rejected candidates go back into the stash and the scan continues. *)
let rec salvage_from r hdr =
  match resync r hdr with
  | None -> None
  | Some h ->
      let sec, frac, incl, orig_len = parse_header r h in
      let data = read_upto r incl in
      if String.length data < incl then begin
        r.stash <- data ^ r.stash;
        salvage_from r h
      end
      else begin
        let peek = read_upto r 16 in
        r.stash <- peek ^ r.stash;
        let boundary_ok =
          String.length peek < 16
          ||
          let s2, f2, i2, o2 = parse_header r peek in
          plausible r ~sec:s2 ~frac:f2 ~incl:i2 ~orig_len:o2
        in
        if boundary_ok then accept r ~salvaged:true ~sec ~frac ~orig_len data
        else begin
          r.stash <- data ^ r.stash;
          salvage_from r h
        end
      end

let read_next r =
  let hdr = read_upto r 16 in
  if String.length hdr = 0 then None
  else if String.length hdr < 16 then begin
    (* EOF mid-header: a capture cut off while writing a record. *)
    Nt_obs.Obs.add r.c_skipped (String.length hdr);
    mark_truncated r;
    None
  end
  else begin
    let sec, frac, incl, orig_len = parse_header r hdr in
    if incl <= 0x4000000 && (not r.salvage || plausible r ~sec ~frac ~incl ~orig_len) then begin
      let data = read_upto r incl in
      if String.length data < incl then begin
        (* EOF mid-packet: truncated final record. *)
        Nt_obs.Obs.add r.c_skipped (16 + String.length data);
        mark_truncated r;
        None
      end
      else accept r ~salvaged:false ~sec ~frac ~orig_len data
    end
    else if not r.salvage then raise (Bad_format "absurd packet length")
    else salvage_from r hdr
  end

let fold r f init =
  let rec go acc = match read_next r with None -> acc | Some p -> go (f acc p) in
  go init

let packets r =
  let rec next () = match read_next r with None -> Seq.Nil | Some p -> Seq.Cons (p, next) in
  next
