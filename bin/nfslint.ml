(* nfslint: static checker for trace invariants and anonymization-leak
   safety. Streams a saved text trace through the rule engine and exits
   non-zero when findings reach the --fail-on threshold.

   Examples:
     nfslint campus.trace
     nfslint --anonymized --json --fail-on warn campus.anon.trace
     nfslint --list-rules *)

open Cmdliner
module Lint = Nt_lint.Engine

let list_rules () =
  Rules_cli.print
    (List.map
       (fun (r : Nt_lint.Rule.t) ->
         {
           Rules_cli.id = r.id;
           family = Nt_lint.Rule.family_to_string r.family;
           severity = Nt_lint.Rule.severity_to_string r.severity;
           doc = r.doc;
         })
       Nt_lint.Rule.all);
  0

let run input json fail_on anonymized enabled_only disabled reorder_window xid_window
    max_tracked list obs_opts =
  if list then list_rules ()
  else
    let unknown =
      List.filter
        (fun id -> Nt_lint.Rule.find id = None)
        (disabled @ Option.value enabled_only ~default:[])
    in
    if unknown <> [] then begin
      Printf.eprintf "nfslint: unknown rule(s): %s (try --list-rules)\n%!"
        (String.concat ", " unknown);
      2
    end
    else begin
      let config =
        {
          Lint.default_config with
          anonymized;
          enabled_only;
          disabled;
          reorder_window;
          xid_window;
          max_tracked;
        }
      in
      let obs = Nt_obs.Obs.create () in
      let timeline = Obs_cli.timeline obs_opts obs in
      let sampler = Nt_obs.Sampler.create ~interval:0.05 obs in
      let prog = Obs_cli.progress obs_opts "nfslint" in
      let tick () =
        Obs_cli.tick prog ~stage:"lint" 1;
        Nt_obs.Sampler.tick sampler
      in
      (* stdin stays a lazy stream; file sources (text or tbin:) load
         through the pipeline's format-sniffing reader *)
      let ic = if input = "-" then Some stdin else None in
      let records =
        match ic with
        | Some ic ->
            Seq.map
              (fun r ->
                tick ();
                r)
              (Nt_trace.Record.read_channel ic)
        | None -> List.to_seq (Nt_core.Pipeline.load_trace ~obs ~tick input)
      in
      let t = Nt_obs.Obs.with_span obs "lint.run" (fun () -> Lint.run ~obs config records) in
      Obs_cli.finish prog;
      let findings = Lint.findings t in
      if json then print_endline (Nt_lint.Finding.list_to_json findings)
      else List.iter (fun f -> print_endline (Nt_lint.Finding.to_string f)) findings;
      Printf.eprintf "nfslint: %d records, %d error(s), %d warning(s), %d info%s\n%!"
        (Lint.records_seen t)
        (Lint.severity_count t Nt_lint.Rule.Error)
        (Lint.severity_count t Nt_lint.Rule.Warn)
        (Lint.severity_count t Nt_lint.Rule.Info)
        (if Lint.suppressed t > 0 then
           Printf.sprintf " (%d findings suppressed past per-rule cap)" (Lint.suppressed t)
         else "");
      ignore (Nt_obs.Sampler.sample_now sampler : Nt_obs.Sampler.sample);
      Obs_cli.dump obs_opts obs;
      Obs_cli.dump_timeline ~sampler obs_opts timeline;
      let failed =
        match fail_on with
        | `Never -> false
        | `Error -> Lint.severity_count t Nt_lint.Rule.Error > 0
        | `Warn ->
            Lint.severity_count t Nt_lint.Rule.Error > 0
            || Lint.severity_count t Nt_lint.Rule.Warn > 0
      in
      if failed then 1 else 0
    end

let input =
  Arg.(
    value & pos 0 string "-"
    & info [] ~docv:"TRACE"
        ~doc:
          "Input trace: - for stdin (text), a sniffed path, or an explicit trace:PATH / \
           tbin:PATH.")

let json = Arg.(value & flag & info [ "json" ] ~doc:"Emit findings as a JSON array.")

let fail_on =
  Arg.(
    value
    & opt (enum [ ("never", `Never); ("warn", `Warn); ("error", `Error) ]) `Error
    & info [ "fail-on" ] ~docv:"LEVEL"
        ~doc:"Exit non-zero when findings reach $(docv): never, warn, or error.")

let anonymized =
  Arg.(
    value & flag
    & info [ "anonymized" ]
        ~doc:
          "The trace claims to be anonymized: also run the anonymization-leak family (raw \
           addresses, unmapped IDs, name residue, dictionary words).")

let enabled_only =
  Arg.(
    value
    & opt (some (list string)) None
    & info [ "enable" ] ~docv:"RULES" ~doc:"Run only these comma-separated rule ids.")

let disabled =
  Arg.(
    value & opt (list string) []
    & info [ "disable" ] ~docv:"RULES" ~doc:"Skip these comma-separated rule ids.")

let reorder_window =
  Arg.(
    value
    & opt float Lint.default_config.Lint.reorder_window
    & info [ "reorder-window" ] ~docv:"SECONDS"
        ~doc:"Tolerated backwards step in call time before non-monotonic-time fires.")

let xid_window =
  Arg.(
    value
    & opt float Lint.default_config.Lint.xid_window
    & info [ "xid-window" ] ~docv:"SECONDS"
        ~doc:"Window within which (client, XID) reuse counts as duplicate-xid.")

let max_tracked =
  Arg.(
    value
    & opt int Lint.default_config.Lint.max_tracked
    & info [ "max-tracked" ] ~docv:"N"
        ~doc:"State cap per table (handles, XIDs, bindings); memory stays bounded on \
              arbitrarily long traces.")

let cmd =
  Cmd.v
    (Cmd.info "nfslint" ~doc:"Statically check a saved NFS trace for invariant violations")
    Term.(
      const run $ input $ json $ fail_on $ anonymized $ enabled_only $ disabled
      $ reorder_window $ xid_window $ max_tracked $ Rules_cli.term $ Obs_cli.term)

let () = exit (Cmd.eval' cmd)
