(* Shared --metrics / --metrics-format / --progress plumbing for the
   binaries in this directory. Each binary creates one registry, wires
   it through the components it drives, and calls [dump] on the way
   out; [progress]/[tick]/[finish] give the throttled stderr heartbeat
   without sprinkling option matches through every hot loop. *)

open Cmdliner
module Obs = Nt_obs.Obs

type format = Json | Prometheus

type opts = {
  metrics : string option;
  format : format;
  progress : bool;
  trace_out : string option;
}

let metrics_arg =
  Arg.(
    value
    & opt ~vopt:(Some "-") (some string) None
    & info [ "metrics" ] ~docv:"PATH"
        ~doc:
          "Dump an observability snapshot (counters, gauges, histograms and stage-span \
           timings) after the run. With no $(docv) or with '-' the snapshot goes to stdout; \
           otherwise it is written to $(docv).")

let format_arg =
  Arg.(
    value
    & opt (enum [ ("json", Json); ("prometheus", Prometheus) ]) Json
    & info [ "metrics-format" ] ~docv:"FMT"
        ~doc:
          "Snapshot format: json (one self-describing document) or prometheus (text \
           exposition format).")

let progress_arg =
  Arg.(
    value & flag
    & info [ "progress" ]
        ~doc:
          "Print a throttled heartbeat to stderr while working: records so far, rate, \
           current stage, and an ETA when the total is known.")

let trace_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "trace-out" ] ~docv:"FILE"
        ~doc:
          "Write a Chrome trace-event timeline of the run to $(docv): stage and per-pass \
           spans on per-domain tracks plus heap/RSS counter tracks. Load it in \
           ui.perfetto.dev or chrome://tracing.")

let term =
  Term.(
    const (fun metrics format progress trace_out -> { metrics; format; progress; trace_out })
    $ metrics_arg $ format_arg $ progress_arg $ trace_arg)

let dump opts obs =
  match opts.metrics with
  | None -> ()
  | Some path ->
      let snap = Obs.snapshot obs in
      let text =
        match opts.format with
        | Json -> Obs.to_json snap
        | Prometheus -> Obs.to_prometheus snap
      in
      if path = "-" then begin
        print_string text;
        flush stdout
      end
      else begin
        let oc = open_out path in
        Fun.protect ~finally:(fun () -> close_out oc) (fun () -> output_string oc text)
      end

(* Timeline helpers: [timeline] creates and attaches one when
   --trace-out was given; [dump_timeline] folds a sampler's readings in
   as counter tracks and writes the file. Counters go on their own
   synthetic track so late-dumped samples are not clamped forward by
   the main track's already-advanced span clock. *)

let counters_tid = 1_000_000

let timeline opts obs =
  match opts.trace_out with
  | None -> None
  | Some _ ->
      let tl = Nt_obs.Timeline.create () in
      Nt_obs.Timeline.attach tl obs;
      Some tl

let write_timeline ?sampler ~path tl =
  (match sampler with
  | None -> ()
  | Some s ->
      List.iter
        (fun (smp : Nt_obs.Sampler.sample) ->
          Nt_obs.Timeline.counter tl ~tid:counters_tid ~name:"heap_words"
            ~ts:smp.Nt_obs.Sampler.at
            ~value:(float_of_int smp.Nt_obs.Sampler.heap_words)
            ();
          Nt_obs.Timeline.counter tl ~tid:(counters_tid + 1) ~name:"rss_bytes"
            ~ts:smp.Nt_obs.Sampler.at
            ~value:(float_of_int smp.Nt_obs.Sampler.rss_bytes)
            ())
        (Nt_obs.Sampler.samples s));
  Nt_obs.Timeline.write_file tl path

let dump_timeline ?sampler opts tl =
  match (opts.trace_out, tl) with
  | Some path, Some tl -> write_timeline ?sampler ~path tl
  | _ -> ()

(* Heartbeat helpers over [Nt_obs.Progress.t option] so call sites stay
   one-liners whether or not --progress was given. *)

let progress opts ?total label =
  if opts.progress then Some (Nt_obs.Progress.create ?total ~label ()) else None

let tick p ?stage n =
  match p with None -> () | Some p -> Nt_obs.Progress.tick p ?stage n

let set_stage p s = Option.iter (fun p -> Nt_obs.Progress.set_stage p s) p
let finish p = Option.iter Nt_obs.Progress.finish p
