module Tw = Nt_util.Trace_week

(* Piecewise-linear hourly shapes, normalised so weekday values peak
   near 2.0 with a mean around 1.0 across the week. Interpolating
   between hour points avoids stair-step artifacts in Figure 4. *)

let campus_weekday =
  [| 0.25; 0.15; 0.10; 0.08; 0.08; 0.10; 0.20; 0.45; 0.90; 1.60; 1.90; 2.00;
     1.95; 1.90; 1.95; 2.00; 1.95; 1.80; 1.55; 1.30; 1.15; 1.00; 0.70; 0.40 |]

let campus_weekend =
  [| 0.20; 0.12; 0.08; 0.06; 0.06; 0.08; 0.12; 0.20; 0.35; 0.55; 0.75; 0.90;
     0.95; 0.95; 0.90; 0.90; 0.85; 0.80; 0.75; 0.70; 0.65; 0.55; 0.40; 0.28 |]

let eecs_weekday =
  [| 0.45; 0.35; 0.30; 0.30; 0.30; 0.30; 0.35; 0.50; 0.80; 1.30; 1.60; 1.70;
     1.60; 1.65; 1.75; 1.80; 1.75; 1.60; 1.40; 1.20; 1.10; 1.00; 0.80; 0.60 |]

let eecs_weekend =
  [| 0.40; 0.32; 0.28; 0.26; 0.26; 0.28; 0.30; 0.35; 0.45; 0.60; 0.70; 0.80;
     0.85; 0.85; 0.80; 0.80; 0.80; 0.75; 0.75; 0.70; 0.70; 0.65; 0.55; 0.45 |]

(* Cron activity clusters in the small hours every night. *)
let eecs_batch =
  [| 1.8; 2.6; 3.2; 3.4; 3.0; 2.0; 1.0; 0.5; 0.3; 0.3; 0.3; 0.3;
     0.3; 0.3; 0.3; 0.3; 0.3; 0.3; 0.4; 0.5; 0.6; 0.8; 1.0; 1.4 |]

let interp shape t =
  let hour = float_of_int (Tw.hour_of_time t) in
  let frac =
    let s = Float.rem (t -. Tw.week_start) 3600. in
    (if s < 0. then s +. 3600. else s) /. 3600.
  in
  let h0 = int_of_float hour in
  let h1 = (h0 + 1) mod 24 in
  shape.(h0) +. (frac *. (shape.(h1) -. shape.(h0)))

let pick ~weekday ~weekend t =
  if Tw.is_weekday (Tw.day_of_time t) then interp weekday t else interp weekend t

let campus_intensity t = pick ~weekday:campus_weekday ~weekend:campus_weekend t
let eecs_interactive_intensity t = pick ~weekday:eecs_weekday ~weekend:eecs_weekend t
let eecs_batch_intensity t = interp eecs_batch t

let weekly_mean f =
  let step = 600. in
  let n = int_of_float ((Tw.week_end -. Tw.week_start) /. step) in
  let sum = ref 0. in
  for i = 0 to n - 1 do
    sum := !sum +. f (Tw.week_start +. (float_of_int i *. step))
  done;
  !sum /. float_of_int n
