let run_metric ?(block = 8192) ~c (run : Io_log.access array) =
  let n = Array.length run in
  if n <= 1 then 1.0
  else begin
    let consecutive = ref 0 in
    for i = 1 to n - 1 do
      let prev = run.(i - 1) in
      let expected = (prev.Io_log.offset / block) + ((prev.count + block - 1) / block) in
      let got = run.(i).Io_log.offset / block in
      if abs (got - expected) < c then incr consecutive
    done;
    float_of_int !consecutive /. float_of_int (n - 1)
  end

type curve = {
  bucket_edges : float array;
  read_allowed : float array;
  read_strict : float array;
  write_allowed : float array;
  write_strict : float array;
  cum_total_runs : float array;
  cum_read_runs : float array;
  cum_write_runs : float array;
}

(* Buckets: 16k, 32k, ..., 64M (13 buckets). *)
let edges = Array.init 13 (fun i -> 16384. *. (2. ** float_of_int i))

let bucket_of bytes =
  let rec go i =
    if i >= Array.length edges - 1 || bytes < edges.(i) then i else go (i + 1)
  in
  go 0

let analyze ?(window = 0.01) log =
  let nb = Array.length edges in
  let sum_ra = Array.make nb 0. and n_ra = Array.make nb 0 in
  let sum_rs = Array.make nb 0. in
  let sum_wa = Array.make nb 0. and n_wa = Array.make nb 0 in
  let sum_ws = Array.make nb 0. in
  let runs_total = Array.make nb 0 in
  let runs_read = Array.make nb 0 in
  let runs_write = Array.make nb 0 in
  let total_runs = ref 0 in
  Io_log.iter_files log (fun _ accesses ->
      let sorted = if window > 0. then fst (Io_log.sort_window window accesses) else accesses in
      List.iter
        (fun run ->
          let bytes =
            float_of_int
              (Array.fold_left (fun acc (a : Io_log.access) -> acc + a.count) 0 run)
          in
          let b = bucket_of bytes in
          incr total_runs;
          runs_total.(b) <- runs_total.(b) + 1;
          let is_read = Array.for_all (fun (a : Io_log.access) -> a.is_read) run in
          let is_write = Array.for_all (fun (a : Io_log.access) -> not a.is_read) run in
          let allowed = run_metric ~c:10 run in
          let strict = run_metric ~c:1 run in
          if is_read then begin
            runs_read.(b) <- runs_read.(b) + 1;
            sum_ra.(b) <- sum_ra.(b) +. allowed;
            sum_rs.(b) <- sum_rs.(b) +. strict;
            n_ra.(b) <- n_ra.(b) + 1
          end
          else if is_write then begin
            runs_write.(b) <- runs_write.(b) + 1;
            sum_wa.(b) <- sum_wa.(b) +. allowed;
            sum_ws.(b) <- sum_ws.(b) +. strict;
            n_wa.(b) <- n_wa.(b) + 1
          end)
        (Runs.split sorted));
  let avg sums counts =
    Array.mapi (fun i s -> if counts.(i) = 0 then nan else s /. float_of_int counts.(i)) sums
  in
  let cumulative counts =
    let out = Array.make nb 0. in
    let acc = ref 0 in
    let total = float_of_int (max 1 !total_runs) in
    for i = 0 to nb - 1 do
      acc := !acc + counts.(i);
      out.(i) <- 100. *. float_of_int !acc /. total
    done;
    out
  in
  {
    bucket_edges = edges;
    read_allowed = avg sum_ra n_ra;
    read_strict = avg sum_rs n_ra;
    write_allowed = avg sum_wa n_wa;
    write_strict = avg sum_ws n_wa;
    cum_total_runs = cumulative runs_total;
    cum_read_runs = cumulative runs_read;
    cum_write_runs = cumulative runs_write;
  }
