lib/sim/readahead.mli:
