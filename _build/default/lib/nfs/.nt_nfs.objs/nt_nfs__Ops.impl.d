lib/nfs/ops.ml: Fh Printf Proc Stdlib Types
