type profile = {
  preserve_names : string list;
  preserve_suffixes : string list;
  preserve_uids : int list;
  preserve_gids : int list;
}

let of_config (c : Nt_trace.Anonymize.config) =
  {
    preserve_names = c.preserve_names;
    preserve_suffixes = c.preserve_suffixes;
    preserve_uids = c.preserve_uids;
    preserve_gids = c.preserve_gids;
  }

let default = of_config Nt_trace.Anonymize.default_config

let is_base36 c = (c >= '0' && c <= '9') || (c >= 'a' && c <= 'z')

(* Stem tokens are "a" + 5 base36 chars; anonymized suffixes are
   "." + "s" + 2 base36 chars. Mirrors [Anonymize.fresh_token]. *)
let is_stem_token s =
  String.length s = 6
  && s.[0] = 'a'
  && (try
        String.iteri (fun i c -> if i > 0 && not (is_base36 c) then raise Exit) s;
        true
      with Exit -> false)

let is_suffix_token s =
  String.length s = 4
  && s.[0] = '.'
  && s.[1] = 's'
  && is_base36 s.[2]
  && is_base36 s.[3]

(* Same affix-splitting order as [Anonymize.name], so every string that
   function can emit parses here. *)
let rec grammar p n =
  if n = "" || n = "." || n = ".." then None
  else if List.mem n p.preserve_names then None
  else
    let len = String.length n in
    if len > 2 && n.[0] = '#' && n.[len - 1] = '#' then
      grammar p (String.sub n 1 (len - 2))
    else if len > 1 && n.[len - 1] = '~' then grammar p (String.sub n 0 (len - 1))
    else if len > 2 && String.sub n (len - 2) 2 = ",v" then
      grammar p (String.sub n 0 (len - 2))
    else if n.[0] = '.' then grammar p (String.sub n 1 (len - 1))
    else
      match String.rindex_opt n '.' with
      | Some i when i > 0 && i < len - 1 ->
          let stem = String.sub n 0 i in
          let suffix = String.sub n i (len - i) in
          if not (is_stem_token stem) then
            Some (Printf.sprintf "stem %S is not an anonymizer token" stem)
          else if List.mem suffix p.preserve_suffixes || is_suffix_token suffix then None
          else Some (Printf.sprintf "suffix %S is neither preserved nor a token" suffix)
      | Some _ | None ->
          if is_stem_token n then None
          else Some (Printf.sprintf "component %S is not an anonymizer token" n)

(* Words one should never see in an anonymized trace. All length >= 4
   so short base36 runs cannot collide; matched as substrings of the
   lowercased name. *)
let dictionary =
  [
    "mail"; "spam"; "draft"; "paper"; "thesis"; "grade"; "exam"; "homework";
    "report"; "letter"; "resume"; "secret"; "password"; "private"; "backup";
    "budget"; "salary"; "finance"; "patient"; "medical"; "student"; "advisor";
    "faculty"; "project"; "result"; "experiment"; "simulation"; "notes";
    "admin"; "staff"; "research"; "meeting"; "agenda"; "review"; "proposal";
    "grant"; "chapter"; "abstract"; "figure"; "source"; "archive"; "personal";
    "message"; "folder"; "attachment"; "address"; "phone"; "account"; "login";
  ]

let contains_word name =
  let n = String.lowercase_ascii name in
  let nlen = String.length n in
  let matches w =
    let wlen = String.length w in
    let rec at i = i + wlen <= nlen && (String.sub n i wlen = w || at (i + 1)) in
    at 0
  in
  List.find_opt matches dictionary

type name_verdict = Name_ok | Dictionary of string | Residue of string

let check_name p n =
  match grammar p n with
  | None -> Name_ok
  | Some reason -> (
      (* Only grammar-failing names are screened against the dictionary:
         a random token can spell a word by chance, and grammar-valid
         names are what the anonymizer itself produces. *)
      match contains_word n with Some w -> Dictionary w | None -> Residue reason)

let check_id preserved v = List.mem v preserved || (v >= 10000 && v < 100000)
let check_uid p u = check_id p.preserve_uids u
let check_gid p g = check_id p.preserve_gids g
let check_ip addr = addr lsr 24 = 10
