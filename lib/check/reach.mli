(** Import-graph reachability, the domain-safety scope approximation.

    A module is "reachable" when the transitive closure of compilation
    unit imports, starting from the configured root units (the parallel
    driver and its pass table), includes it.  This over-approximates
    what a worker-domain task closure can touch: imports include things
    only used at setup time, but nothing a task uses can be missing,
    which is the safe direction for a mutable-state check. *)

type t

val compute : roots:string list -> Loader.unit_info list -> t
(** Roots are matched with {!Syntax.unit_matches}; roots matching no
    loaded unit are reported in [missing_roots]. *)

val mem : t -> string -> bool
val size : t -> int
val to_list : t -> string list

val missing_roots : t -> string list
