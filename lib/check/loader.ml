type payload = Impl of Typedtree.structure | Intf of Typedtree.signature

type unit_info = {
  name : string;
  dotted : string;
  source : string;
  cmt_path : string;
  imports : string list;
  payload : payload;
}

let is_impl u = match u.payload with Impl _ -> true | Intf _ -> false

let has_suffix ~suffix s =
  String.length s >= String.length suffix
  && String.sub s (String.length s - String.length suffix) (String.length suffix) = suffix

let excluded ~excludes path =
  List.exists
    (fun needle ->
      let nl = String.length needle and pl = String.length path in
      nl > 0
      && nl <= pl
      &&
      let found = ref false in
      for i = 0 to pl - nl do
        if (not !found) && String.sub path i nl = needle then found := true
      done;
      !found)
    excludes

(* Depth-first walk collecting .cmt/.cmti paths, sorted for stable
   traversal order (findings are re-sorted later, but counters and
   first-wins dedup should not depend on readdir order). *)
let rec walk ~excludes acc dir =
  match Sys.readdir dir with
  | exception Sys_error _ -> acc
  | entries ->
      Array.sort String.compare entries;
      Array.fold_left
        (fun acc entry ->
          let path = Filename.concat dir entry in
          if excluded ~excludes path then acc
          else if (not (has_suffix ~suffix:".cmt" entry || has_suffix ~suffix:".cmti" entry))
                  && Sys.is_directory path
          then walk ~excludes acc path
          else if has_suffix ~suffix:".cmt" entry || has_suffix ~suffix:".cmti" entry then
            path :: acc
          else acc)
        acc entries

let read_one path =
  match Cmt_format.read_cmt path with
  | exception exn -> Error (path, Printexc.to_string exn)
  | infos -> (
      let payload =
        match infos.Cmt_format.cmt_annots with
        | Cmt_format.Implementation s -> Some (Impl s)
        | Cmt_format.Interface s -> Some (Intf s)
        | _ -> None
      in
      match payload with
      | None -> Ok None
      | Some payload ->
          let name = infos.Cmt_format.cmt_modname in
          Ok
            (Some
               {
                 name;
                 dotted = Syntax.dotted_of_unit name;
                 source =
                   (match infos.Cmt_format.cmt_sourcefile with Some s -> s | None -> path);
                 cmt_path = path;
                 imports = List.map fst infos.Cmt_format.cmt_imports;
                 payload;
               }))

let load_dir ~excludes root =
  let paths = List.sort String.compare (walk ~excludes [] root) in
  let seen = Hashtbl.create 64 in
  let units = ref [] in
  let errors = ref [] in
  List.iter
    (fun path ->
      match read_one path with
      | Error e -> errors := e :: !errors
      | Ok None -> ()
      | Ok (Some u) ->
          (* dune emits the same unit under .objs/byte and sometimes
             native dirs; first (sorted) occurrence wins. *)
          let key = (u.name, is_impl u) in
          if not (Hashtbl.mem seen key) then begin
            Hashtbl.add seen key ();
            units := u :: !units
          end)
    paths;
  (List.rev !units, List.rev !errors)
