module Record = Nt_trace.Record
module Ops = Nt_nfs.Ops
module Types = Nt_nfs.Types
module Fh = Nt_nfs.Fh
module Intern = Nt_util.Intern
module Obs = Nt_obs.Obs
module V = Varint

let magic = Nt_formats.Formats.tbin_magic
let sync = "\xf5NT\xb1"
let max_payload = 16 * 1024 * 1024
let magic_len = String.length magic
let sync_len = String.length sync
let header_len = sync_len + 1 + 4 + 4 + 4
let flag_compressed = 0x01

type stats = {
  frames : int;
  records : int;
  skipped_bytes : int;
  missing_header : int;
  bad_frames : int;
  bad_records : int;
  lost_sync : int;
  truncated_tails : int;
}

let failures s =
  s.missing_header + s.bad_frames + s.bad_records + s.lost_sync + s.truncated_tails

let stats_to_string s =
  Printf.sprintf
    "frames=%d records=%d skipped_bytes=%d missing_header=%d bad_frames=%d \
     bad_records=%d lost_sync=%d truncated_tails=%d"
    s.frames s.records s.skipped_bytes s.missing_header s.bad_frames s.bad_records
    s.lost_sync s.truncated_tails

(* {2 Scalar tags}

   Tags follow constructor declaration order in [Nt_nfs.Ops] /
   [Nt_nfs.Types]; the golden fixture under test/golden locks them. *)

let ftype_tag = function
  | Types.Reg -> 0
  | Types.Dir -> 1
  | Types.Blk -> 2
  | Types.Chr -> 3
  | Types.Lnk -> 4
  | Types.Sock -> 5
  | Types.Fifo -> 6

let ftype_of_tag = function
  | 0 -> Types.Reg
  | 1 -> Types.Dir
  | 2 -> Types.Blk
  | 3 -> Types.Chr
  | 4 -> Types.Lnk
  | 5 -> Types.Sock
  | 6 -> Types.Fifo
  | _ -> raise V.Corrupt

(* Record flags byte. *)
let rf_reply = 0x01
let rf_v3 = 0x02
let rf_result = 0x04
let rf_error = 0x08

(* {2 Encoding} *)

let put_u8 b v = Buffer.add_char b (Char.unsafe_chr (v land 0xFF))
let put_bool b v = put_u8 b (if v then 1 else 0)
let put_atom b intern s = V.write_uv b (Intern.id intern s)
let put_fh b intern fh = put_atom b intern (Fh.to_raw fh)

let put_time b (t : Types.time) =
  V.write_zz b t.seconds;
  V.write_zz b t.nanos

let put_fattr b (a : Types.fattr) =
  V.write_uv b (ftype_tag a.ftype);
  V.write_zz b a.mode;
  V.write_zz b a.nlink;
  V.write_zz b a.uid;
  V.write_zz b a.gid;
  V.write_uv64 b a.size;
  V.write_uv64 b a.used;
  V.write_uv64 b a.fsid;
  V.write_uv64 b a.fileid;
  put_time b a.atime;
  put_time b a.mtime;
  put_time b a.ctime

let put_fattr_opt b = function
  | None -> put_u8 b 0
  | Some a ->
      put_u8 b 1;
      put_fattr b a

let put_fh_opt b intern = function
  | None -> put_u8 b 0
  | Some fh ->
      put_u8 b 1;
      put_fh b intern fh

let put_sattr b (s : Types.sattr) =
  let mask =
    (match s.set_mode with Some _ -> 0x01 | None -> 0)
    lor (match s.set_uid with Some _ -> 0x02 | None -> 0)
    lor (match s.set_gid with Some _ -> 0x04 | None -> 0)
    lor (match s.set_size with Some _ -> 0x08 | None -> 0)
    lor (match s.set_atime with Some _ -> 0x10 | None -> 0)
    lor (match s.set_mtime with Some _ -> 0x20 | None -> 0)
  in
  put_u8 b mask;
  (match s.set_mode with Some v -> V.write_zz b v | None -> ());
  (match s.set_uid with Some v -> V.write_zz b v | None -> ());
  (match s.set_gid with Some v -> V.write_zz b v | None -> ());
  (match s.set_size with Some v -> V.write_uv64 b v | None -> ());
  (match s.set_atime with Some t -> put_time b t | None -> ());
  match s.set_mtime with Some t -> put_time b t | None -> ()

let put_call b intern (c : Ops.call) =
  match c with
  | Ops.Null -> V.write_uv b 0
  | Ops.Getattr fh ->
      V.write_uv b 1;
      put_fh b intern fh
  | Ops.Setattr { fh; attrs } ->
      V.write_uv b 2;
      put_fh b intern fh;
      put_sattr b attrs
  | Ops.Lookup { dir; name } ->
      V.write_uv b 3;
      put_fh b intern dir;
      put_atom b intern name
  | Ops.Access { fh; access } ->
      V.write_uv b 4;
      put_fh b intern fh;
      V.write_zz b access
  | Ops.Readlink fh ->
      V.write_uv b 5;
      put_fh b intern fh
  | Ops.Read { fh; offset; count } ->
      V.write_uv b 6;
      put_fh b intern fh;
      V.write_uv64 b offset;
      V.write_zz b count
  | Ops.Write { fh; offset; count; stable } ->
      V.write_uv b 7;
      put_fh b intern fh;
      V.write_uv64 b offset;
      V.write_zz b count;
      put_u8 b (Types.stable_how_to_int stable)
  | Ops.Create { dir; name; mode; exclusive } ->
      V.write_uv b 8;
      put_fh b intern dir;
      put_atom b intern name;
      V.write_zz b mode;
      put_bool b exclusive
  | Ops.Mkdir { dir; name; mode } ->
      V.write_uv b 9;
      put_fh b intern dir;
      put_atom b intern name;
      V.write_zz b mode
  | Ops.Symlink { dir; name; target } ->
      V.write_uv b 10;
      put_fh b intern dir;
      put_atom b intern name;
      put_atom b intern target
  | Ops.Mknod { dir; name } ->
      V.write_uv b 11;
      put_fh b intern dir;
      put_atom b intern name
  | Ops.Remove { dir; name } ->
      V.write_uv b 12;
      put_fh b intern dir;
      put_atom b intern name
  | Ops.Rmdir { dir; name } ->
      V.write_uv b 13;
      put_fh b intern dir;
      put_atom b intern name
  | Ops.Rename { from_dir; from_name; to_dir; to_name } ->
      V.write_uv b 14;
      put_fh b intern from_dir;
      put_atom b intern from_name;
      put_fh b intern to_dir;
      put_atom b intern to_name
  | Ops.Link { fh; to_dir; to_name } ->
      V.write_uv b 15;
      put_fh b intern fh;
      put_fh b intern to_dir;
      put_atom b intern to_name
  | Ops.Readdir { dir; cookie; count } ->
      V.write_uv b 16;
      put_fh b intern dir;
      V.write_uv64 b cookie;
      V.write_zz b count
  | Ops.Readdirplus { dir; cookie; count } ->
      V.write_uv b 17;
      put_fh b intern dir;
      V.write_uv64 b cookie;
      V.write_zz b count
  | Ops.Statfs fh ->
      V.write_uv b 18;
      put_fh b intern fh
  | Ops.Fsinfo fh ->
      V.write_uv b 19;
      put_fh b intern fh
  | Ops.Pathconf fh ->
      V.write_uv b 20;
      put_fh b intern fh
  | Ops.Commit { fh; offset; count } ->
      V.write_uv b 21;
      put_fh b intern fh;
      V.write_uv64 b offset;
      V.write_zz b count

let put_success b intern (s : Ops.success) =
  match s with
  | Ops.R_null -> V.write_uv b 0
  | Ops.R_attr a ->
      V.write_uv b 1;
      put_fattr b a
  | Ops.R_lookup { fh; obj; dir } ->
      V.write_uv b 2;
      put_fh b intern fh;
      put_fattr_opt b obj;
      put_fattr_opt b dir
  | Ops.R_access v ->
      V.write_uv b 3;
      V.write_zz b v
  | Ops.R_readlink target ->
      V.write_uv b 4;
      put_atom b intern target
  | Ops.R_read { attr; count; eof } ->
      V.write_uv b 5;
      put_fattr_opt b attr;
      V.write_zz b count;
      put_bool b eof
  | Ops.R_write { count; committed; attr } ->
      V.write_uv b 6;
      V.write_zz b count;
      put_u8 b (Types.stable_how_to_int committed);
      put_fattr_opt b attr
  | Ops.R_create { fh; attr } ->
      V.write_uv b 7;
      put_fh_opt b intern fh;
      put_fattr_opt b attr
  | Ops.R_empty -> V.write_uv b 8
  | Ops.R_readdir { entries; eof } ->
      V.write_uv b 9;
      V.write_uv b (List.length entries);
      List.iter
        (fun (e : Ops.dir_entry) ->
          V.write_uv64 b e.entry_fileid;
          put_atom b intern e.entry_name;
          V.write_uv64 b e.entry_cookie)
        entries;
      put_bool b eof
  | Ops.R_statfs { total_bytes; free_bytes } ->
      V.write_uv b 10;
      V.write_uv64 b total_bytes;
      V.write_uv64 b free_bytes
  | Ops.R_fsinfo { rtmax; wtmax } ->
      V.write_uv b 11;
      V.write_zz b rtmax;
      V.write_zz b wtmax
  | Ops.R_pathconf { name_max } ->
      V.write_uv b 12;
      V.write_zz b name_max

let put_record b intern prev_bits (r : Record.t) =
  let flags =
    (match r.reply_time with Some _ -> rf_reply | None -> 0)
    lor (if r.version = 3 then rf_v3 else 0)
    lor
    match r.result with
    | None -> 0
    | Some (Ok _) -> rf_result
    | Some (Error _) -> rf_result lor rf_error
  in
  put_u8 b flags;
  let tbits = Int64.bits_of_float r.time in
  V.write_uv64 b (Int64.logxor tbits !prev_bits);
  prev_bits := tbits;
  (match r.reply_time with
  | Some rt -> V.write_uv64 b (Int64.logxor (Int64.bits_of_float rt) tbits)
  | None -> ());
  V.write_zz b r.client;
  V.write_zz b r.server;
  V.write_zz b r.xid;
  V.write_zz b r.uid;
  V.write_zz b r.gid;
  put_call b intern r.call;
  match r.result with
  | None -> ()
  | Some (Error st) -> V.write_zz b (Types.nfsstat_to_int st)
  | Some (Ok s) -> put_success b intern s

(* {2 Decoding}

   The [decode_*] bindings below are the per-record hot path (alloc-hot
   seeds via the Nt_tbin decode scope): they are kept free of closures,
   string copies and list construction, except where the allocation is
   the decoded value itself (readdir entries), which carries a counted
   [@@nt.alloc_ok]. Field reads are let-bound in wire order — record
   literals must not sequence cursor reads themselves. *)

let get_bool c =
  match V.u8 c with 0 -> false | 1 -> true | _ -> raise V.Corrupt

let get_atom atoms c =
  let i = V.read_uv c in
  if i < 0 || i >= Array.length atoms then raise V.Corrupt;
  Array.unsafe_get atoms i

let get_fh atoms c =
  let s = get_atom atoms c in
  if String.length s > 64 then raise V.Corrupt;
  Fh.of_raw s

let get_stable c =
  match V.u8 c with
  | 0 -> Types.Unstable
  | 1 -> Types.Data_sync
  | 2 -> Types.File_sync
  | _ -> raise V.Corrupt

let decode_time c =
  let seconds = V.read_zz c in
  let nanos = V.read_zz c in
  { Types.seconds; nanos }

let decode_fattr c =
  let ftype = ftype_of_tag (V.read_uv c) in
  let mode = V.read_zz c in
  let nlink = V.read_zz c in
  let uid = V.read_zz c in
  let gid = V.read_zz c in
  let size = V.read_uv64 c in
  let used = V.read_uv64 c in
  let fsid = V.read_uv64 c in
  let fileid = V.read_uv64 c in
  let atime = decode_time c in
  let mtime = decode_time c in
  let ctime = decode_time c in
  { Types.ftype; mode; nlink; uid; gid; size; used; fsid; fileid; atime; mtime; ctime }

let decode_fattr_opt c = if get_bool c then Some (decode_fattr c) else None

let decode_fh_opt atoms c = if get_bool c then Some (get_fh atoms c) else None

let decode_sattr c =
  let mask = V.u8 c in
  if mask land lnot 0x3F <> 0 then raise V.Corrupt;
  let set_mode = if mask land 0x01 <> 0 then Some (V.read_zz c) else None in
  let set_uid = if mask land 0x02 <> 0 then Some (V.read_zz c) else None in
  let set_gid = if mask land 0x04 <> 0 then Some (V.read_zz c) else None in
  let set_size = if mask land 0x08 <> 0 then Some (V.read_uv64 c) else None in
  let set_atime = if mask land 0x10 <> 0 then Some (decode_time c) else None in
  let set_mtime = if mask land 0x20 <> 0 then Some (decode_time c) else None in
  { Types.set_mode; set_uid; set_gid; set_size; set_atime; set_mtime }

let decode_call c atoms =
  match V.read_uv c with
  | 0 -> Ops.Null
  | 1 -> Ops.Getattr (get_fh atoms c)
  | 2 ->
      let fh = get_fh atoms c in
      let attrs = decode_sattr c in
      Ops.Setattr { fh; attrs }
  | 3 ->
      let dir = get_fh atoms c in
      let name = get_atom atoms c in
      Ops.Lookup { dir; name }
  | 4 ->
      let fh = get_fh atoms c in
      let access = V.read_zz c in
      Ops.Access { fh; access }
  | 5 -> Ops.Readlink (get_fh atoms c)
  | 6 ->
      let fh = get_fh atoms c in
      let offset = V.read_uv64 c in
      let count = V.read_zz c in
      Ops.Read { fh; offset; count }
  | 7 ->
      let fh = get_fh atoms c in
      let offset = V.read_uv64 c in
      let count = V.read_zz c in
      let stable = get_stable c in
      Ops.Write { fh; offset; count; stable }
  | 8 ->
      let dir = get_fh atoms c in
      let name = get_atom atoms c in
      let mode = V.read_zz c in
      let exclusive = get_bool c in
      Ops.Create { dir; name; mode; exclusive }
  | 9 ->
      let dir = get_fh atoms c in
      let name = get_atom atoms c in
      let mode = V.read_zz c in
      Ops.Mkdir { dir; name; mode }
  | 10 ->
      let dir = get_fh atoms c in
      let name = get_atom atoms c in
      let target = get_atom atoms c in
      Ops.Symlink { dir; name; target }
  | 11 ->
      let dir = get_fh atoms c in
      let name = get_atom atoms c in
      Ops.Mknod { dir; name }
  | 12 ->
      let dir = get_fh atoms c in
      let name = get_atom atoms c in
      Ops.Remove { dir; name }
  | 13 ->
      let dir = get_fh atoms c in
      let name = get_atom atoms c in
      Ops.Rmdir { dir; name }
  | 14 ->
      let from_dir = get_fh atoms c in
      let from_name = get_atom atoms c in
      let to_dir = get_fh atoms c in
      let to_name = get_atom atoms c in
      Ops.Rename { from_dir; from_name; to_dir; to_name }
  | 15 ->
      let fh = get_fh atoms c in
      let to_dir = get_fh atoms c in
      let to_name = get_atom atoms c in
      Ops.Link { fh; to_dir; to_name }
  | 16 ->
      let dir = get_fh atoms c in
      let cookie = V.read_uv64 c in
      let count = V.read_zz c in
      Ops.Readdir { dir; cookie; count }
  | 17 ->
      let dir = get_fh atoms c in
      let cookie = V.read_uv64 c in
      let count = V.read_zz c in
      Ops.Readdirplus { dir; cookie; count }
  | 18 -> Ops.Statfs (get_fh atoms c)
  | 19 -> Ops.Fsinfo (get_fh atoms c)
  | 20 -> Ops.Pathconf (get_fh atoms c)
  | 21 ->
      let fh = get_fh atoms c in
      let offset = V.read_uv64 c in
      let count = V.read_zz c in
      Ops.Commit { fh; offset; count }
  | _ -> raise V.Corrupt

let decode_entries c atoms =
  let n = V.read_uv c in
  (* every entry costs at least 3 payload bytes, so [n] beyond the
     remaining slice is structurally impossible *)
  if n < 0 || n > c.V.limit - c.V.pos then raise V.Corrupt;
  let entries = ref [] in
  for _ = 1 to n do
    let entry_fileid = V.read_uv64 c in
    let entry_name = get_atom atoms c in
    let entry_cookie = V.read_uv64 c in
    entries := { Ops.entry_fileid; entry_name; entry_cookie } :: !entries
  done;
  List.rev !entries
[@@nt.alloc_ok "the readdir entry list is the decoded value"]

let decode_success c atoms =
  match V.read_uv c with
  | 0 -> Ops.R_null
  | 1 -> Ops.R_attr (decode_fattr c)
  | 2 ->
      let fh = get_fh atoms c in
      let obj = decode_fattr_opt c in
      let dir = decode_fattr_opt c in
      Ops.R_lookup { fh; obj; dir }
  | 3 -> Ops.R_access (V.read_zz c)
  | 4 -> Ops.R_readlink (get_atom atoms c)
  | 5 ->
      let attr = decode_fattr_opt c in
      let count = V.read_zz c in
      let eof = get_bool c in
      Ops.R_read { attr; count; eof }
  | 6 ->
      let count = V.read_zz c in
      let committed = get_stable c in
      let attr = decode_fattr_opt c in
      Ops.R_write { count; committed; attr }
  | 7 ->
      let fh = decode_fh_opt atoms c in
      let attr = decode_fattr_opt c in
      Ops.R_create { fh; attr }
  | 8 -> Ops.R_empty
  | 9 ->
      let entries = decode_entries c atoms in
      let eof = get_bool c in
      Ops.R_readdir { entries; eof }
  | 10 ->
      let total_bytes = V.read_uv64 c in
      let free_bytes = V.read_uv64 c in
      Ops.R_statfs { total_bytes; free_bytes }
  | 11 ->
      let rtmax = V.read_zz c in
      let wtmax = V.read_zz c in
      Ops.R_fsinfo { rtmax; wtmax }
  | 12 -> Ops.R_pathconf { name_max = V.read_zz c }
  | _ -> raise V.Corrupt

let decode_record c atoms prev_bits =
  let flags = V.u8 c in
  if flags land lnot (rf_reply lor rf_v3 lor rf_result lor rf_error) <> 0 then
    raise V.Corrupt;
  let tbits = Int64.logxor (V.read_uv64 c) !prev_bits in
  prev_bits := tbits;
  let time = Int64.float_of_bits tbits in
  let reply_time =
    if flags land rf_reply <> 0 then
      Some (Int64.float_of_bits (Int64.logxor (V.read_uv64 c) tbits))
    else None
  in
  let client = V.read_zz c in
  let server = V.read_zz c in
  let xid = V.read_zz c in
  let uid = V.read_zz c in
  let gid = V.read_zz c in
  let call = decode_call c atoms in
  let result =
    if flags land rf_result = 0 then None
    else if flags land rf_error <> 0 then
      Some (Error (Types.nfsstat_of_int (V.read_zz c)))
    else Some (Ok (decode_success c atoms))
  in
  let version = if flags land rf_v3 <> 0 then 3 else 2 in
  { Record.time; reply_time; client; server; version; xid; uid; gid; call; result }

(* The per-frame dictionary: atom count and lengths are bounded by the
   payload slice itself, so a malformed dictionary fails before
   allocating more than the frame holds. *)
let load_atoms c =
  let n = V.read_uv c in
  (* each atom costs at least its one length byte *)
  if n < 0 || n > c.V.limit - c.V.pos then raise V.Corrupt;
  let atoms = Array.make n "" in
  for i = 0 to n - 1 do
    let len = V.read_uv c in
    if len < 0 || len > c.V.limit - c.V.pos then raise V.Corrupt;
    Array.unsafe_set atoms i (String.sub c.V.s c.V.pos len);
    c.V.pos <- c.V.pos + len
  done;
  atoms
[@@nt.alloc_ok "per-frame atom dictionary materialization, amortized across the frame's records"]

(* {2 Writer} *)

module Writer = struct
  type t = {
    sink : string -> unit;
    frame_records : int;
    mutable intern : Intern.t;
    body : Buffer.t;
    scratch : Buffer.t;
    mutable count : int;
    prev_bits : int64 ref;
    mutable total : int;
  }

  (* a frame also closes early when its record payload hits this *)
  let soft_payload_cap = 1 lsl 20

  let create ?(frame_records = 4096) sink =
    let frame_records = max 1 frame_records in
    sink magic;
    {
      sink;
      frame_records;
      intern = Intern.create 256;
      body = Buffer.create 65536;
      scratch = Buffer.create 65536;
      count = 0;
      prev_bits = ref 0L;
      total = 0;
    }

  let put_le32 b v =
    Buffer.add_char b (Char.unsafe_chr (v land 0xFF));
    Buffer.add_char b (Char.unsafe_chr ((v lsr 8) land 0xFF));
    Buffer.add_char b (Char.unsafe_chr ((v lsr 16) land 0xFF));
    Buffer.add_char b (Char.unsafe_chr ((v lsr 24) land 0xFF))

  let flush t =
    if t.count > 0 then begin
      Buffer.clear t.scratch;
      let natoms = Intern.size t.intern in
      V.write_uv t.scratch natoms;
      for i = 0 to natoms - 1 do
        let s = Intern.to_string t.intern i in
        V.write_uv t.scratch (String.length s);
        Buffer.add_string t.scratch s
      done;
      V.write_uv t.scratch t.count;
      Buffer.add_buffer t.scratch t.body;
      let raw = Buffer.contents t.scratch in
      let sum = Frame.adler32 raw ~pos:0 ~len:(String.length raw) in
      let packed = Frame.compress raw in
      let compressed = String.length packed < String.length raw in
      let stored = if compressed then packed else raw in
      Buffer.clear t.scratch;
      Buffer.add_string t.scratch sync;
      put_u8 t.scratch (if compressed then flag_compressed else 0);
      put_le32 t.scratch (String.length raw);
      put_le32 t.scratch (String.length stored);
      put_le32 t.scratch sum;
      Buffer.add_string t.scratch stored;
      t.sink (Buffer.contents t.scratch);
      Buffer.clear t.body;
      t.intern <- Intern.create 256;
      t.count <- 0;
      t.prev_bits := 0L
    end

  let add t r =
    put_record t.body t.intern t.prev_bits r;
    t.count <- t.count + 1;
    t.total <- t.total + 1;
    if t.count >= t.frame_records || Buffer.length t.body >= soft_payload_cap then
      flush t

  let close = flush
  let written t = t.total
end

let write_channel ?frame_records oc seq =
  let w = Writer.create ?frame_records (output_string oc) in
  Seq.iter (Writer.add w) seq;
  Writer.close w;
  Writer.written w

let encode_string ?frame_records records =
  let buf = Buffer.create 4096 in
  let w = Writer.create ?frame_records (Buffer.add_string buf) in
  List.iter (Writer.add w) records;
  Writer.close w;
  Buffer.contents buf

(* {2 Decoder} *)

module Decoder = struct
  type t = {
    mutable pending : string;
    mutable header_ok : bool;
    mutable resyncing : bool;
    mutable finished : bool;
    mutable consumed : int64;
    queue : (Record.t * int64) Queue.t;
    mutable n_frames : int;
    mutable n_records : int;
    mutable n_skipped : int;
    mutable n_missing : int;
    mutable n_bad_frames : int;
    mutable n_bad_records : int;
    mutable n_lost : int;
    mutable n_trunc : int;
    c_frames : Obs.counter;
    c_records : Obs.counter;
    c_skipped : Obs.counter;
    c_missing : Obs.counter;
    c_bad_frame : Obs.counter;
    c_bad_record : Obs.counter;
    c_lost : Obs.counter;
    c_trunc : Obs.counter;
  }

  let create ?(obs = Obs.null) () =
    let fail reason =
      Obs.counter obs
        ~labels:[ ("reason", reason) ]
        ~help:"tbin stream decode failures, by class" "tbin.decode_failure"
    in
    {
      pending = "";
      header_ok = false;
      resyncing = false;
      finished = false;
      consumed = 0L;
      queue = Queue.create ();
      n_frames = 0;
      n_records = 0;
      n_skipped = 0;
      n_missing = 0;
      n_bad_frames = 0;
      n_bad_records = 0;
      n_lost = 0;
      n_trunc = 0;
      c_frames = Obs.counter obs ~help:"tbin frames decoded clean" "tbin.frames";
      c_records = Obs.counter obs ~help:"tbin records decoded" "tbin.records";
      c_skipped =
        Obs.counter obs ~help:"bytes passed over while resynchronising"
          "tbin.skipped_bytes";
      c_missing = fail "missing-header";
      c_bad_frame = fail "bad-frame";
      c_bad_record = fail "bad-record";
      c_lost = fail "lost-sync";
      c_trunc = fail "truncated-tail";
    }

  let drop t n =
    t.pending <- String.sub t.pending n (String.length t.pending - n);
    t.consumed <- Int64.add t.consumed (Int64.of_int n)

  let skip t n =
    if n > 0 then begin
      t.n_skipped <- t.n_skipped + n;
      Obs.add t.c_skipped n;
      drop t n
    end

  let le32 s off =
    Char.code (String.unsafe_get s off)
    lor (Char.code (String.unsafe_get s (off + 1)) lsl 8)
    lor (Char.code (String.unsafe_get s (off + 2)) lsl 16)
    lor (Char.code (String.unsafe_get s (off + 3)) lsl 24)

  let sync_at s i =
    Char.equal (String.unsafe_get s i) '\xf5'
    && Char.equal (String.unsafe_get s (i + 1)) 'N'
    && Char.equal (String.unsafe_get s (i + 2)) 'T'
    && Char.equal (String.unsafe_get s (i + 3)) '\xb1'

  (* index of the first sync marker at or after [from], or -1 *)
  let find_sync s from =
    let last = String.length s - sync_len in
    let i = ref from and found = ref (-1) in
    while !found < 0 && !i <= last do
      if sync_at s !i then found := !i else incr i
    done;
    !found

  (* One counter per corruption event: a failure in a clean stream is
     counted here and opens a resync episode; candidate frames that
     fail while the episode is still open are the same event and skip
     silently. A successful frame decode closes the episode. *)
  let frame_damaged t =
    if not t.resyncing then begin
      t.n_bad_frames <- t.n_bad_frames + 1;
      Obs.inc t.c_bad_frame
    end;
    t.resyncing <- true;
    skip t 1

  let decode_payload t raw ~frame_start ~frame_end =
    t.n_frames <- t.n_frames + 1;
    Obs.inc t.c_frames;
    try
      let c = V.cursor raw in
      let atoms = load_atoms c in
      let count = V.read_uv c in
      if count < 0 then raise V.Corrupt;
      let prev_bits = ref 0L in
      for i = 1 to count do
        let r = decode_record c atoms prev_bits in
        Queue.push (r, if i = count then frame_end else frame_start) t.queue;
        t.n_records <- t.n_records + 1;
        Obs.inc t.c_records
      done;
      (* trailing garbage inside a checksummed frame is still damage *)
      if c.V.pos <> c.V.limit then raise V.Corrupt
    with V.Corrupt ->
      t.n_bad_records <- t.n_bad_records + 1;
      Obs.inc t.c_bad_record

  let rec parse t =
    let len = String.length t.pending in
    if not t.header_ok then begin
      if len >= magic_len then begin
        if String.equal (String.sub t.pending 0 magic_len) magic then
          drop t magic_len
        else begin
          t.n_missing <- t.n_missing + 1;
          Obs.inc t.c_missing;
          t.resyncing <- true
        end;
        t.header_ok <- true;
        parse t
      end
    end
    else if len >= sync_len && sync_at t.pending 0 then begin
      if len >= header_len then begin
        let flags = Char.code (String.unsafe_get t.pending sync_len) in
        let raw_len = le32 t.pending (sync_len + 1) in
        let stored_len = le32 t.pending (sync_len + 5) in
        let sum = le32 t.pending (sync_len + 9) in
        let shape_ok =
          flags land lnot flag_compressed = 0
          && raw_len >= 0 && raw_len <= max_payload
          && stored_len >= 0 && stored_len <= max_payload
          && (flags land flag_compressed <> 0 || stored_len = raw_len)
        in
        if not shape_ok then begin
          frame_damaged t;
          parse t
        end
        else if len >= header_len + stored_len then begin
          match
            let raw =
              if flags land flag_compressed <> 0 then
                Frame.decompress t.pending ~pos:header_len ~len:stored_len
                  ~expect:raw_len
              else String.sub t.pending header_len stored_len
            in
            if Frame.adler32 raw ~pos:0 ~len:raw_len <> sum then raise V.Corrupt;
            raw
          with
          | exception V.Corrupt ->
              frame_damaged t;
              parse t
          | raw ->
              let frame_start = t.consumed in
              let frame_end =
                Int64.add t.consumed (Int64.of_int (header_len + stored_len))
              in
              drop t (header_len + stored_len);
              t.resyncing <- false;
              decode_payload t raw ~frame_start ~frame_end;
              parse t
        end
        (* else: wait for the rest of the frame *)
      end
      (* else: wait for a full header *)
    end
    else if len >= sync_len then begin
      (* fewer than sync_len bytes could still be a marker prefix, so a
         desync verdict waits until the judgement is chunk-independent *)
      if not t.resyncing then begin
        t.n_lost <- t.n_lost + 1;
        Obs.inc t.c_lost;
        t.resyncing <- true
      end;
      let at = find_sync t.pending 1 in
      if at >= 0 then begin
        skip t at;
        parse t
      end
      else begin
        (* no marker: keep a tail that could be a marker prefix *)
        let keep = min len (sync_len - 1) in
        skip t (len - keep)
      end
    end

  let feed t chunk =
    if (not t.finished) && String.length chunk > 0 then begin
      t.pending <-
        (if String.length t.pending = 0 then chunk else t.pending ^ chunk);
      parse t
    end

  let next t = Queue.take_opt t.queue

  let pull t =
    match Queue.take_opt t.queue with Some (r, _) -> Some r | None -> None

  let finish t =
    if not t.finished then begin
      t.finished <- true;
      let len = String.length t.pending in
      if len > 0 then begin
        if not t.header_ok then begin
          (* stream ended inside the magic itself *)
          t.n_missing <- t.n_missing + 1;
          Obs.inc t.c_missing
        end
        else if not t.resyncing then begin
          t.n_trunc <- t.n_trunc + 1;
          Obs.inc t.c_trunc
        end;
        (* a resync episode swallowing the tail was already counted *)
        skip t len
      end
    end

  let reset_at t off =
    t.pending <- "";
    Queue.clear t.queue;
    t.consumed <- off;
    t.header_ok <- Int64.compare off 0L > 0;
    t.resyncing <- false;
    t.finished <- false

  let consumed t = t.consumed

  let stats t =
    {
      frames = t.n_frames;
      records = t.n_records;
      skipped_bytes = t.n_skipped;
      missing_header = t.n_missing;
      bad_frames = t.n_bad_frames;
      bad_records = t.n_bad_records;
      lost_sync = t.n_lost;
      truncated_tails = t.n_trunc;
    }

  let footprint t =
    let queued = Queue.length t.queue in
    Nt_obs.Footprint.v ~cards:queued
      ~words:((String.length t.pending / 8) + (queued * 32))
end

(* {2 Whole-stream helpers} *)

let chunk_size = 65536

let iter_channel ?obs ic f =
  let d = Decoder.create ?obs () in
  let buf = Bytes.create chunk_size in
  let rec drain () =
    match Decoder.pull d with
    | Some r ->
        f r;
        drain ()
    | None -> ()
  in
  let rec loop () =
    let n = input ic buf 0 chunk_size in
    if n = 0 then Decoder.finish d
    else begin
      Decoder.feed d (Bytes.sub_string buf 0 n);
      drain ();
      loop ()
    end
  in
  loop ();
  drain ();
  Decoder.stats d

let read_channel ?obs ic =
  let acc = ref [] in
  let stats = iter_channel ?obs ic (fun r -> acc := r :: !acc) in
  (stats, List.rev !acc)

let decode_string ?obs s =
  let d = Decoder.create ?obs () in
  Decoder.feed d s;
  Decoder.finish d;
  let acc = ref [] in
  let continue = ref true in
  while !continue do
    match Decoder.pull d with
    | Some r -> acc := r :: !acc
    | None -> continue := false
  done;
  (Decoder.stats d, List.rev !acc)
[@@nt.alloc_ok "whole-stream convenience entry: materializes the record list, not a per-record path"]
