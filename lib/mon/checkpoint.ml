type t = {
  saved_at : float;
  feed_pos : int64 option;
  counters : (string * int) list;
  ring : string list;
  pending : string list;
}

let version = Nt_formats.Formats.checkpoint_version
let f2s = Printf.sprintf "%h"

let payload t =
  let b = Buffer.create 4096 in
  let line fmt = Printf.ksprintf (fun s -> Buffer.add_string b s; Buffer.add_char b '\n') fmt in
  line "%s" version;
  line "saved_at %s" (f2s t.saved_at);
  (match t.feed_pos with
  | Some off -> line "feed_pos %Ld" off
  | None -> line "feed_pos -");
  line "counters %d" (List.length t.counters);
  List.iter (fun (k, v) -> line "counter %s %d" k v) t.counters;
  line "ring_lines %d" (List.length t.ring);
  List.iter (fun l -> line "%s" l) t.ring;
  line "pending_lines %d" (List.length t.pending);
  List.iter (fun l -> line "%s" l) t.pending;
  Buffer.contents b

let save ~path t =
  let body = payload t in
  let digest = Digest.to_hex (Digest.string body) in
  let tmp = path ^ ".tmp" in
  match
    let fd = Unix.openfile tmp [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_TRUNC ] 0o644 in
    Fun.protect
      ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
      (fun () ->
        let oc = Unix.out_channel_of_descr fd in
        output_string oc body;
        output_string oc ("digest " ^ digest ^ "\n");
        flush oc;
        Unix.fsync fd);
    Unix.rename tmp path
  with
  | () -> Ok ()
  | exception Unix.Unix_error (e, _, _) -> Error (Unix.error_message e)
  | exception Sys_error e -> Error e

let load ~path =
  let ( let* ) = Result.bind in
  let* raw =
    match
      let ic = open_in_bin path in
      Fun.protect
        ~finally:(fun () -> close_in_noerr ic)
        (fun () -> really_input_string ic (in_channel_length ic))
    with
    | s -> Ok s
    | exception Sys_error e -> Error e
    | exception End_of_file -> Error "truncated checkpoint"
  in
  (* Split off the trailing digest line and verify it covers the rest
     byte for byte. *)
  let* body, digest_line =
    let n = String.length raw in
    if n = 0 then Error "empty checkpoint"
    else
      let upto = if raw.[n - 1] = '\n' then n - 1 else n in
      match String.rindex_from_opt raw (upto - 1) '\n' with
      | Some i -> Ok (String.sub raw 0 (i + 1), String.sub raw (i + 1) (upto - i - 1))
      | None -> Error "checkpoint has no digest line"
  in
  let* digest =
    match String.split_on_char ' ' digest_line with
    | [ "digest"; d ] -> Ok d
    | _ -> Error "checkpoint has no digest line"
  in
  let* () =
    if String.equal (Digest.to_hex (Digest.string body)) digest then Ok ()
    else Error "checkpoint digest mismatch"
  in
  let lines = String.split_on_char '\n' body in
  let lines = match List.rev lines with "" :: rest -> List.rev rest | _ -> lines in
  match lines with
  | v :: rest when String.equal v version ->
      let* saved_at, rest =
        match rest with
        | l :: rest -> (
            match String.split_on_char ' ' l with
            | [ "saved_at"; f ] -> (
                match float_of_string_opt f with
                | Some f -> Ok (f, rest)
                | None -> Error "bad saved_at")
            | _ -> Error "missing saved_at")
        | [] -> Error "truncated checkpoint"
      in
      let* feed_pos, rest =
        match rest with
        | l :: rest -> (
            match String.split_on_char ' ' l with
            | [ "feed_pos"; "-" ] -> Ok (None, rest)
            | [ "feed_pos"; off ] -> (
                match Int64.of_string_opt off with
                | Some off -> Ok (Some off, rest)
                | None -> Error "bad feed_pos")
            | _ -> Error "missing feed_pos")
        | [] -> Error "truncated checkpoint"
      in
      let* ncounters, rest =
        match rest with
        | l :: rest -> (
            match String.split_on_char ' ' l with
            | [ "counters"; n ] -> (
                match int_of_string_opt n with
                | Some n -> Ok (n, rest)
                | None -> Error "bad counters count")
            | _ -> Error "missing counters header")
        | [] -> Error "truncated checkpoint"
      in
      let rec read_counters n acc rest =
        if n = 0 then Ok (List.rev acc, rest)
        else
          match rest with
          | l :: rest -> (
              match String.split_on_char ' ' l with
              | [ "counter"; k; v ] -> (
                  match int_of_string_opt v with
                  | Some v -> read_counters (n - 1) ((k, v) :: acc) rest
                  | None -> Error ("bad counter value: " ^ l))
              | _ -> Error ("bad counter line: " ^ l))
          | [] -> Error "truncated counters"
      in
      let* counters, rest = read_counters ncounters [] rest in
      let* nring, rest =
        match rest with
        | l :: rest -> (
            match String.split_on_char ' ' l with
            | [ "ring_lines"; n ] -> (
                match int_of_string_opt n with
                | Some n -> Ok (n, rest)
                | None -> Error "bad ring_lines count")
            | _ -> Error "missing ring_lines header")
        | [] -> Error "truncated checkpoint"
      in
      let* ring, rest =
        let rec take n acc = function
          | rest when n = 0 -> Ok (List.rev acc, rest)
          | [] -> Error "ring payload length mismatch"
          | l :: rest -> take (n - 1) (l :: acc) rest
        in
        take nring [] rest
      in
      let* npending, rest =
        match rest with
        | l :: rest -> (
            match String.split_on_char ' ' l with
            | [ "pending_lines"; n ] -> (
                match int_of_string_opt n with
                | Some n -> Ok (n, rest)
                | None -> Error "bad pending_lines count")
            | _ -> Error "missing pending_lines header")
        | [] -> Error "truncated checkpoint"
      in
      if List.length rest <> npending then Error "pending payload length mismatch"
      else Ok { saved_at; feed_pos; counters; ring; pending = rest }
  | v :: _ -> Error ("unsupported checkpoint version: " ^ v)
  | [] -> Error "empty checkpoint"
