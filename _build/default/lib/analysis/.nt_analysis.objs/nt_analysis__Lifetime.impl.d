lib/analysis/lifetime.ml: Array Hashtbl Int64 List Nt_nfs Nt_trace Nt_util
