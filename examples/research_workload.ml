(* The EECS scenario: a departmental home-directory server whose load
   is dominated by cache-validation metadata, write-backs from
   single-user workstations, and short-lived build artifacts.

   This example simulates a working afternoon, then inspects the trace:
   the metadata dominance, the write-heavy op mix, and the per-category
   file behaviour (autosaves, backups, objects, browser caches) that
   makes filenames such good predictors on this system.

   Run with: dune exec examples/research_workload.exe *)

module Tw = Nt_util.Trace_week
module Tables = struct
  include Nt_util.Tables

  let print ?title ~header rows = print_string (render ?title ~header rows)
end
module Summary = Nt_analysis.Summary
module Names = Nt_analysis.Names
module Proc = Nt_nfs.Proc

let () =
  let start = Tw.time_of ~day:Tw.Thu ~hour:13 ~minute:0 in
  let stop = start +. (4. *. 3600.) in
  let summary = Summary.create () in
  let names = Names.create () in
  let config = { Nt_workload.Research.default_config with users = 25 } in
  let stats =
    Nt_core.Pipeline.simulate_eecs ~config ~start ~stop
      ~sink:(fun r ->
        Summary.observe summary r;
        Names.observe names r)
      ()
  in
  Printf.printf "EECS, %s .. %s (25 users)\n" (Tw.format start) (Tw.format stop);
  Printf.printf "  records: %d  compiles: %d\n" stats.records stats.compiles;
  Printf.printf "  metadata calls: %.1f%% of traffic (paper: most calls are metadata)\n"
    (100. -. Summary.data_ops_pct summary);
  Printf.printf "  R/W op ratio: %.2f (paper: 0.69 — writes outnumber reads)\n"
    (Summary.read_write_op_ratio summary);
  Printf.printf "\nTop procedures:\n";
  List.iteri
    (fun i (p, n) -> if i < 8 then Printf.printf "  %-12s %7d\n" (Proc.to_string p) n)
    (Summary.top_procs summary);
  Printf.printf "\nPer-category behaviour (why names predict attributes):\n";
  Tables.print
    ~header:[ "category"; "files"; "created+deleted"; "median size"; "median life"; "write-only" ]
    (List.filter_map
       (fun (cat, (s : Names.category_stats)) ->
         if s.files_seen < 3 then None
         else
           Some
             [
               Names.category_to_string cat;
               string_of_int s.files_seen;
               string_of_int s.created_deleted;
               Tables.fmt_bytes s.median_size;
               (if Float.is_nan s.median_lifetime then "-"
                else Tables.fmt_duration s.median_lifetime);
               Tables.fmt_pct s.write_only_pct;
             ])
       (Names.stats names));
  let p = Names.predict names in
  Printf.printf
    "\nName-based prediction on the second half of the window (%d files):\n\
    \  size class %.0f%%, lifetime class %.0f%%, access pattern %.0f%% correct\n"
    p.tested (100. *. p.size_accuracy) (100. *. p.lifetime_accuracy)
    (100. *. p.pattern_accuracy)
