module Prng = Nt_util.Prng

type policy = No_readahead | Fragile | Metric

let policy_name = function
  | No_readahead -> "no-readahead"
  | Fragile -> "fragile"
  | Metric -> "seq-metric"

type outcome = {
  total_time : float;
  disk_time : float;
  requests : int;
  reordered : int;
}

(* Perturb the ascending block order the way nfsiod scheduling does:
   displaced requests move a few positions. *)
let perturb rng ~reorder_fraction ~window blocks =
  let a = Array.copy blocks in
  let n = Array.length a in
  for i = 0 to n - 2 do
    if Prng.chance rng reorder_fraction then begin
      let j = min (n - 1) (i + 1 + Prng.int rng window) in
      let tmp = a.(i) in
      a.(i) <- a.(j);
      a.(j) <- tmp
    end
  done;
  a

let prefetch_depth = 8

let run ?(seed = 42L) ?(file_blocks = 2048) ?(reorder_fraction = 0.1) ?(window = 3) policy =
  let rng = Prng.create seed in
  let order = perturb rng ~reorder_fraction ~window (Array.init file_blocks (fun i -> i)) in
  let disk = Disk.create () in
  let total = ref 0. in
  let reordered = ref 0 in
  (* Per-request network + protocol overhead, identical across
     policies; only disk behaviour differs. *)
  let per_request_overhead = 0.0002 in
  let expected = ref 0 in
  (* Metric state: sliding count of c-consecutive requests. *)
  let c = 10 in
  let history_len = 32 in
  let history = Queue.create () in
  let consecutive_in_history = ref 0 in
  let last_block = ref (-1) in
  let fragile_sequential = ref true in
  Array.iter
    (fun block ->
      if block < !last_block then incr reordered;
      (* Update heuristics from the arrival stream. *)
      let is_c_consecutive = !last_block >= 0 && abs (block - !last_block) <= c in
      if !last_block >= 0 then begin
        Queue.push is_c_consecutive history;
        if is_c_consecutive then incr consecutive_in_history;
        if Queue.length history > history_len then
          if Queue.pop history then decr consecutive_in_history
      end;
      fragile_sequential := block = !expected;
      expected := block + 1;
      last_block := block;
      let do_prefetch =
        match policy with
        | No_readahead -> false
        | Fragile -> !fragile_sequential
        | Metric ->
            Queue.length history = 0
            || float_of_int !consecutive_in_history /. float_of_int (Queue.length history) >= 0.75
      in
      let service = Disk.read disk ~block ~nblocks:1 in
      let service =
        if do_prefetch then
          (* Prefetch overlaps with returning the current block: the
             client pays only the current read; later hits are free. *)
          let _ = Disk.prefetch disk ~block:(block + 1) ~nblocks:prefetch_depth in
          service
        else service
      in
      total := !total +. service +. per_request_overhead)
    order;
  {
    total_time = !total;
    disk_time = Disk.busy_time disk;
    requests = file_blocks;
    reordered = !reordered;
  }

let speedup ~baseline outcome =
  100. *. (baseline.total_time -. outcome.total_time) /. baseline.total_time
