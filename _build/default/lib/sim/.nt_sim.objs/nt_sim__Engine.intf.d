lib/sim/engine.mli:
