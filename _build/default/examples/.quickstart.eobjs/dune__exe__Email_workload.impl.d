examples/email_workload.ml: Float Nt_analysis Nt_core Nt_util Nt_workload Printf
