(* The paper's anonymization pipeline, §2: capture a trace, anonymize
   it with consistent random mappings, and show that (a) sensitive
   values are gone, (b) the structural properties every analysis needs
   survive — shared suffixes, the lock/backup/autosave markers, and all
   sizes and offsets.

   Run with: dune exec examples/anonymization_demo.exe *)

module Anonymize = Nt_trace.Anonymize
module Record = Nt_trace.Record
module Summary = Nt_analysis.Summary
module Names = Nt_analysis.Names
module Tw = Nt_util.Trace_week

let () =
  (* 1. A small raw trace. *)
  let start = Tw.time_of ~day:Tw.Mon ~hour:11 ~minute:0 in
  let records = ref [] in
  let config = { Nt_workload.Email.default_config with users = 12 } in
  ignore
    (Nt_core.Pipeline.simulate_campus ~config ~start ~stop:(start +. 1200.)
       ~sink:(fun r -> records := r :: !records)
       ());
  let records = List.rev !records in
  Printf.printf "raw trace: %d records\n\n" (List.length records);

  (* 2. Component mappings in action. *)
  let anon = Anonymize.create ~seed:0x5EC4E7L Anonymize.default_config in
  Printf.printf "component mappings (consistent, random, structure-preserving):\n";
  List.iter
    (fun n -> Printf.printf "  %-22s -> %s\n" n (Anonymize.name anon n))
    [
      "grant-proposal.doc"; "grant-proposal.doc" (* identical again *); "budget.doc";
      "thesis.tex"; "thesis.tex~"; "#thesis.tex#"; "thesis.tex,v"; ".inbox"; ".inbox.lock";
      ".pinerc"; ".forward"; "CVS";
    ];
  Printf.printf "\nuid 1004 -> %d (stable: %d); root stays %d\n" (Anonymize.uid anon 1004)
    (Anonymize.uid anon 1004) (Anonymize.uid anon 0);

  (* 3. Anonymize the whole trace and compare analyses. *)
  let anonymized = List.map (Anonymize.record anon) records in
  let summarize rs =
    let s = Summary.create () in
    List.iter (Summary.observe s) rs;
    s
  in
  let s_raw = summarize records and s_anon = summarize anonymized in
  Printf.printf "\nanalysis on raw vs anonymized trace:\n";
  Printf.printf "  ops           %d vs %d\n" (Summary.total_ops s_raw) (Summary.total_ops s_anon);
  Printf.printf "  bytes read    %.0f vs %.0f\n" (Summary.bytes_read s_raw)
    (Summary.bytes_read s_anon);
  let locks rs =
    let n = Names.create () in
    List.iter (Names.observe n) rs;
    Names.lock_created_deleted_pct n
  in
  Printf.printf "  lock share    %.1f%% vs %.1f%% (markers survive by design)\n" (locks records)
    (locks anonymized);

  (* 4. One record before and after. *)
  (match
     List.find_opt
       (fun (r, _) -> match Record.name r with Some n -> n <> ".inbox.lock" | None -> false)
       (List.combine records anonymized)
   with
  | Some (before, after) ->
      Printf.printf "\nbefore: %s\nafter : %s\n" (Record.to_line before) (Record.to_line after)
  | None -> ());

  (* 5. Different seeds give unrelated mappings: no cross-site joins. *)
  let other = Anonymize.create ~seed:999L Anonymize.default_config in
  Printf.printf "\nsame file under a different site's seed: %s vs %s\n"
    (Anonymize.name anon "thesis.tex")
    (Anonymize.name other "thesis.tex")
