module Record = Nt_trace.Record
module Obs = Nt_obs.Obs

type entry = { at : float; seq : int; record : Record.t }

type t = {
  mutable heap : entry array;
  mutable size : int;
  horizon : float;
  emit : Record.t -> unit;
  mutable max_seen : float;
  mutable next_seq : int;
  c_pushed : Obs.counter;
  c_released : Obs.counter;
  g_occupancy : Obs.gauge;
}

let dummy_record : Record.t =
  {
    time = 0.;
    reply_time = None;
    client = 0;
    server = 0;
    version = 3;
    xid = 0;
    uid = 0;
    gid = 0;
    call = Nt_nfs.Ops.Null;
    result = None;
  }

let dummy = { at = 0.; seq = 0; record = dummy_record }

let create ?obs ?(horizon = 600.) emit =
  (* pushed/released feed test assertions, so the default registry is a
     private enabled one. *)
  let obs = match obs with Some o -> o | None -> Obs.create () in
  {
    heap = Array.make 4096 dummy;
    size = 0;
    horizon;
    emit;
    max_seen = neg_infinity;
    next_seq = 0;
    c_pushed = Obs.counter obs ~help:"records entering the reorder window" "sorter.pushed";
    c_released = Obs.counter obs ~help:"records released in sorted order" "sorter.released";
    g_occupancy = Obs.gauge obs ~help:"peak reorder-window occupancy" "sorter.window_occupancy";
  }

let less a b = a.at < b.at || (a.at = b.at && a.seq < b.seq)

let swap t i j =
  let tmp = t.heap.(i) in
  t.heap.(i) <- t.heap.(j);
  t.heap.(j) <- tmp

let rec sift_up t i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if less t.heap.(i) t.heap.(parent) then begin
      swap t i parent;
      sift_up t parent
    end
  end

let rec sift_down t i =
  let l = (2 * i) + 1 and r = (2 * i) + 2 in
  let smallest = ref i in
  if l < t.size && less t.heap.(l) t.heap.(!smallest) then smallest := l;
  if r < t.size && less t.heap.(r) t.heap.(!smallest) then smallest := r;
  if !smallest <> i then begin
    swap t i !smallest;
    sift_down t !smallest
  end

let pop t =
  let top = t.heap.(0) in
  t.size <- t.size - 1;
  t.heap.(0) <- t.heap.(t.size);
  t.heap.(t.size) <- dummy;
  sift_down t 0;
  top.record

let release_until t threshold =
  while t.size > 0 && t.heap.(0).at <= threshold do
    let r = pop t in
    Obs.inc t.c_released;
    t.emit r
  done

let push t (r : Record.t) =
  if t.size = Array.length t.heap then begin
    let bigger = Array.make (2 * t.size) dummy in
    Array.blit t.heap 0 bigger 0 t.size;
    t.heap <- bigger
  end;
  t.heap.(t.size) <- { at = r.time; seq = t.next_seq; record = r };
  t.next_seq <- t.next_seq + 1;
  t.size <- t.size + 1;
  Obs.inc t.c_pushed;
  Obs.set_max t.g_occupancy (float_of_int t.size);
  sift_up t (t.size - 1);
  if r.time > t.max_seen then t.max_seen <- r.time;
  release_until t (t.max_seen -. t.horizon)

let flush t = release_until t infinity
let pushed t = t.next_seq
let released t = Obs.value t.c_released
