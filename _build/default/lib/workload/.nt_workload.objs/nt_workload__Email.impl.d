lib/workload/email.ml: Array Diurnal Float Int64 Io_patterns Nt_net Nt_nfs Nt_sim Nt_util Option Printf
