module Prng = Nt_util.Prng
module Pcap = Nt_net.Pcap
module Obs = Nt_obs.Obs

type drop_model =
  | No_drop
  | Bernoulli of float
  | Gilbert_elliott of { p_gb : float; p_bg : float; loss_good : float; loss_bad : float }

type plan = {
  drop : drop_model;
  corrupt : float;
  corrupt_bytes : int;
  corrupt_addrs_only : bool;
  truncate : float;
  truncate_to : int;
  duplicate : float;
  duplicate_delay : float;
  reorder : float;
  reorder_displace : float;
  clock_jitter : float;
}

let none =
  {
    drop = No_drop;
    corrupt = 0.;
    corrupt_bytes = 1;
    corrupt_addrs_only = false;
    truncate = 0.;
    truncate_to = 0;
    duplicate = 0.;
    duplicate_delay = 0.001;
    reorder = 0.;
    reorder_displace = 1.;
    clock_jitter = 0.;
  }

let bernoulli_loss p = { none with drop = Bernoulli p }

let campus_burst =
  {
    none with
    (* bad-state fraction 0.01/0.26 ~ 3.8%, x0.5 loss ~ 1.9% mean *)
    drop = Gilbert_elliott { p_gb = 0.01; p_bg = 0.25; loss_good = 0.0005; loss_bad = 0.5 };
    corrupt = 0.002;
    corrupt_bytes = 2;
    truncate = 0.001;
    truncate_to = 60;
    duplicate = 0.005;
    reorder = 0.001;
    reorder_displace = 0.5;
    clock_jitter = 0.00002;
  }

let is_noop p =
  p.drop = No_drop && p.corrupt = 0. && p.truncate = 0. && p.duplicate = 0. && p.reorder = 0.
  && p.clock_jitter = 0.

type counts = {
  presented : int;
  dropped : int;
  corrupted : int;
  truncated : int;
  duplicated : int;
  reordered : int;
  emitted : int;
}

let counts_to_string c =
  Printf.sprintf
    "presented=%d dropped=%d corrupted=%d truncated=%d duplicated=%d reordered=%d emitted=%d"
    c.presented c.dropped c.corrupted c.truncated c.duplicated c.reordered c.emitted

(* Injection accounting lives on the obs registry (fault.* namespace,
   one [fault.events] counter per kind label); [counts] reads the
   counters back so existing callers see the numbers a --metrics
   snapshot reports. *)
type t = {
  plan : plan;
  rng : Prng.t;
  mutable bad_state : bool;  (* Gilbert-Elliott channel state *)
  c_presented : Obs.counter;
  c_dropped : Obs.counter;
  c_corrupted : Obs.counter;
  c_truncated : Obs.counter;
  c_duplicated : Obs.counter;
  c_reordered : Obs.counter;
  c_emitted : Obs.counter;
}

let create ?obs ?(seed = 2003L) plan =
  let obs = match obs with Some o -> o | None -> Obs.create () in
  let kind k = Obs.counter obs ~labels:[ ("kind", k) ] ~help:"injected fault events by kind" "fault.events" in
  {
    plan;
    rng = Prng.create seed;
    bad_state = false;
    c_presented = Obs.counter obs ~help:"packets offered to the injector" "fault.presented";
    c_dropped = kind "dropped";
    c_corrupted = kind "corrupted";
    c_truncated = kind "truncated";
    c_duplicated = kind "duplicated";
    c_reordered = kind "reordered";
    c_emitted = Obs.counter obs ~help:"packets emitted by the injector" "fault.emitted";
  }

let counts t =
  {
    presented = Obs.value t.c_presented;
    dropped = Obs.value t.c_dropped;
    corrupted = Obs.value t.c_corrupted;
    truncated = Obs.value t.c_truncated;
    duplicated = Obs.value t.c_duplicated;
    reordered = Obs.value t.c_reordered;
    emitted = Obs.value t.c_emitted;
  }

let step_drop t =
  match t.plan.drop with
  | No_drop -> false
  | Bernoulli p -> Prng.chance t.rng p
  | Gilbert_elliott { p_gb; p_bg; loss_good; loss_bad } ->
      (if t.bad_state then begin
         if Prng.chance t.rng p_bg then t.bad_state <- false
       end
       else if Prng.chance t.rng p_gb then t.bad_state <- true);
      Prng.chance t.rng (if t.bad_state then loss_bad else loss_good)

(* IPv4 source/destination addresses within an Ethernet frame. *)
let addr_lo = 26
let addr_hi = 33

let flip_bytes t data =
  let b = Bytes.of_string data in
  let n = Bytes.length b in
  let lo, hi =
    if t.plan.corrupt_addrs_only && n > addr_hi then (addr_lo, addr_hi) else (0, n - 1)
  in
  for _ = 1 to t.plan.corrupt_bytes do
    let pos = Prng.int_in t.rng lo hi in
    let mask = 1 + Prng.int t.rng 255 in
    Bytes.set b pos (Char.chr (Char.code (Bytes.get b pos) lxor mask))
  done;
  Bytes.unsafe_to_string b

let jitter t at =
  if t.plan.clock_jitter = 0. then at
  else at +. (((Prng.unit_float t.rng *. 2.) -. 1.) *. t.plan.clock_jitter)

let apply t ~time data =
  Obs.inc t.c_presented;
  if step_drop t then begin
    Obs.inc t.c_dropped;
    []
  end
  else begin
    let p = t.plan in
    let at = jitter t time in
    let out =
      if p.duplicate > 0. && Prng.chance t.rng p.duplicate then begin
        Obs.inc t.c_duplicated;
        [ (at, data); (at +. p.duplicate_delay, data) ]
      end
      else if p.corrupt > 0. && String.length data > 0 && Prng.chance t.rng p.corrupt then begin
        Obs.inc t.c_corrupted;
        [ (at, flip_bytes t data) ]
      end
      else if
        p.truncate > 0. && String.length data > p.truncate_to && Prng.chance t.rng p.truncate
      then begin
        Obs.inc t.c_truncated;
        [ (at, String.sub data 0 p.truncate_to) ]
      end
      else if p.reorder > 0. && Prng.chance t.rng p.reorder then begin
        Obs.inc t.c_reordered;
        [ (at +. p.reorder_displace, data) ]
      end
      else [ (at, data) ]
    in
    Obs.add t.c_emitted (List.length out);
    out
  end

let wrap_writer t writer ~time data =
  List.iter (fun (at, bytes) -> Pcap.write writer ~time:at bytes) (apply t ~time data)

let mangle_pcap ?(seed = 41L) ~flips bytes =
  let b = Bytes.of_string bytes in
  let n = Bytes.length b in
  if n <= 24 || flips <= 0 then (bytes, 0)
  else begin
    let rng = Prng.create seed in
    let applied = ref 0 in
    for _ = 1 to flips do
      let pos = Prng.int_in rng 24 (n - 1) in
      let mask = 1 + Prng.int rng 255 in
      Bytes.set b pos (Char.chr (Char.code (Bytes.get b pos) lxor mask));
      incr applied
    done;
    (Bytes.unsafe_to_string b, !applied)
  end
