(** Version-independent NFS operations.

    The simulator issues these, the v2/v3 codecs put them on the wire,
    and the capture engine recovers them. Representing calls and results
    once keeps every downstream consumer (trace records, analyses)
    agnostic about which protocol version a client spoke — exactly the
    property the paper's tracer needed, since EECS mixed NFSv2 and v3.

    WRITE data content is not represented (only its length): the
    analyses never look at payload bytes, and the packet codec
    materialises deterministic filler when a real wire image is needed. *)

type call =
  | Null
  | Getattr of Fh.t
  | Setattr of { fh : Fh.t; attrs : Types.sattr }
  | Lookup of { dir : Fh.t; name : string }
  | Access of { fh : Fh.t; access : int }
  | Readlink of Fh.t
  | Read of { fh : Fh.t; offset : int64; count : int }
  | Write of { fh : Fh.t; offset : int64; count : int; stable : Types.stable_how }
  | Create of { dir : Fh.t; name : string; mode : int; exclusive : bool }
  | Mkdir of { dir : Fh.t; name : string; mode : int }
  | Symlink of { dir : Fh.t; name : string; target : string }
  | Mknod of { dir : Fh.t; name : string }
  | Remove of { dir : Fh.t; name : string }
  | Rmdir of { dir : Fh.t; name : string }
  | Rename of { from_dir : Fh.t; from_name : string; to_dir : Fh.t; to_name : string }
  | Link of { fh : Fh.t; to_dir : Fh.t; to_name : string }
  | Readdir of { dir : Fh.t; cookie : int64; count : int }
  | Readdirplus of { dir : Fh.t; cookie : int64; count : int }
  | Statfs of Fh.t
  | Fsinfo of Fh.t
  | Pathconf of Fh.t
  | Commit of { fh : Fh.t; offset : int64; count : int }

type dir_entry = { entry_fileid : int64; entry_name : string; entry_cookie : int64 }

type success =
  | R_null
  | R_attr of Types.fattr  (** getattr, setattr, write-style attr-only results *)
  | R_lookup of { fh : Fh.t; obj : Types.fattr option; dir : Types.fattr option }
  | R_access of int
  | R_readlink of string
  | R_read of { attr : Types.fattr option; count : int; eof : bool }
  | R_write of { count : int; committed : Types.stable_how; attr : Types.fattr option }
  | R_create of { fh : Fh.t option; attr : Types.fattr option }
  | R_empty  (** remove, rmdir, rename, link, commit: just status + attrs *)
  | R_readdir of { entries : dir_entry list; eof : bool }
  | R_statfs of { total_bytes : int64; free_bytes : int64 }
  | R_fsinfo of { rtmax : int; wtmax : int }
  | R_pathconf of { name_max : int }

type result = (success, Types.nfsstat) Stdlib.result

val proc_of_call : call -> Proc.t

val call_fh : call -> Fh.t option
(** Primary handle the call operates on (the directory for name ops). *)

val call_name : call -> string option
(** Filename argument, when the call carries one. *)

val describe_call : call -> string
(** One-line rendering for trace dumps, e.g.
    ["read fh=6e66... off=8192 count=8192"]. *)
