(** Accumulator-boundedness rules (bound-table, bound-list) over the
    bindings in the bound-hot set.  Growth sites must be paired with
    same-module eviction/reset evidence or carry a counted
    [@@nt.bounded "cap"] / [@@nt.unbounded "reason"] annotation. *)

val check : Finding.sink -> hot:Hot.t -> Loader.unit_info -> unit
