(* nfstrace: the passive tracer. Decode a pcap capture of NFS traffic
   into nfsdump-style text trace records.

   Example: nfstrace capture.pcap -o capture.trace *)

open Cmdliner

let run input output =
  let ic = if input = "-" then stdin else open_in_bin input in
  let reader = Nt_net.Pcap.reader_of_channel ic in
  let oc = if output = "-" then stdout else open_out output in
  let emit r =
    output_string oc (Nt_trace.Record.to_line r);
    output_char oc '\n'
  in
  (* Stream records as replies complete; unanswered calls flush at EOF. *)
  let capture = Nt_trace.Capture.create ~emit () in
  Nt_trace.Capture.feed_pcap capture reader;
  let stats, _ = Nt_trace.Capture.finish capture in
  if input <> "-" then close_in ic;
  if output <> "-" then close_out oc;
  Printf.eprintf "nfstrace: %s\n%!" (Nt_trace.Capture.stats_to_string stats);
  0

let input =
  Arg.(
    required & pos 0 (some string) None & info [] ~docv:"PCAP" ~doc:"Input pcap file (- for stdin).")

let output =
  Arg.(
    value & opt string "-"
    & info [ "o"; "output" ] ~docv:"FILE" ~doc:"Output trace file (- for stdout).")

let cmd =
  Cmd.v
    (Cmd.info "nfstrace" ~doc:"Decode a pcap capture into NFS trace records")
    Term.(const run $ input $ output)

let () = exit (Cmd.eval' cmd)
