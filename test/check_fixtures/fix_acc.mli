(* An accumulator exposing merge : t -> t -> t with NO registered
   merge-law property: merge-law-missing must fire here. *)

type t

val empty : t
val add : t -> int -> t
val merge : t -> t -> t
