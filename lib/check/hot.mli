(** Function-level hot-code discovery: a cross-unit call graph over
    top-level value bindings, solved from configurable seed bindings
    (analysis observe/add entry points, wire decode* entry points).
    Backs the alloc and bound rule families, which must distinguish
    per-record code from cold reporting code living in the same unit. *)

type graph

val module_aliases : Typedtree.structure -> (string, string) Hashtbl.t
(** Top-level [module X = Path] aliases of a structure, one level. *)

val expand_alias : (string, string) Hashtbl.t -> string -> string
(** Rewrite a dotted name's head component through the alias table. *)

val build : Loader.unit_info list -> graph
(** Collect every implementation unit's top-level bindings and resolve
    cross-unit references (direct, wrapped-dotted, or through one-level
    local module aliases) into call edges. *)

type t

val solve :
  graph -> seeds:(unit_name:string -> dotted:string -> fn:string -> bool) -> t
(** Close the bindings accepted by [seeds] over the call graph. *)

val mem : t -> unit_name:string -> fn:string -> bool
val seed_count : t -> int
val size : t -> int

val to_list : t -> string list
(** Sorted ["Unit.binding"] names, for diagnostics. *)
