(** String interning for per-record hot paths: each distinct string
    maps to a dense small int, so accumulator tables can be int-keyed
    (no per-record string hashing, comparison, or hex encoding).

    Atom ids are private to one interner instance; translating a key
    between accumulators (e.g. at shard merge) goes through
    [to_string] on the source and [id] on the destination. *)

type t

val create : int -> t
(** [create size_hint] makes an empty interner. *)

val id : t -> string -> int
(** Stable dense id of [s] in this interner, assigned on first sight.
    Ids count up from 0. *)

val to_string : t -> int -> string
(** Inverse of [id].  Unchecked: out-of-range ids are undefined. *)

val size : t -> int
