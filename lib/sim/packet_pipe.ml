module Record = Nt_trace.Record
module Rpc = Nt_rpc.Rpc_msg
module Rm = Nt_rpc.Record_mark
module Frame = Nt_net.Frame
module Pcap = Nt_net.Pcap
module E = Nt_xdr.Encode
module Prng = Nt_util.Prng

type transport = Udp_transport | Tcp_transport

let nfs_port = 2049

(* Bounded-window sorter for (time, frame) pairs; packets from one
   record interleave in time with the next record's. *)
module Psort = struct
  type entry = { at : float; seq : int; frame : string }

  type t = {
    mutable heap : entry array;
    mutable size : int;
    horizon : float;
    emit : float -> string -> unit;
    mutable max_seen : float;
    mutable next_seq : int;
  }

  let dummy = { at = 0.; seq = 0; frame = "" }

  let create ~horizon emit =
    { heap = Array.make 4096 dummy; size = 0; horizon; emit; max_seen = neg_infinity; next_seq = 0 }

  let less a b = a.at < b.at || (a.at = b.at && a.seq < b.seq)

  let swap t i j =
    let tmp = t.heap.(i) in
    t.heap.(i) <- t.heap.(j);
    t.heap.(j) <- tmp

  let rec sift_up t i =
    if i > 0 then begin
      let parent = (i - 1) / 2 in
      if less t.heap.(i) t.heap.(parent) then begin
        swap t i parent;
        sift_up t parent
      end
    end

  let rec sift_down t i =
    let l = (2 * i) + 1 and r = (2 * i) + 2 in
    let smallest = ref i in
    if l < t.size && less t.heap.(l) t.heap.(!smallest) then smallest := l;
    if r < t.size && less t.heap.(r) t.heap.(!smallest) then smallest := r;
    if !smallest <> i then begin
      swap t i !smallest;
      sift_down t !smallest
    end

  let release_until t threshold =
    while t.size > 0 && t.heap.(0).at <= threshold do
      let top = t.heap.(0) in
      t.size <- t.size - 1;
      t.heap.(0) <- t.heap.(t.size);
      t.heap.(t.size) <- dummy;
      sift_down t 0;
      t.emit top.at top.frame
    done

  let push t at frame =
    if t.size = Array.length t.heap then begin
      let bigger = Array.make (2 * t.size) dummy in
      Array.blit t.heap 0 bigger 0 t.size;
      t.heap <- bigger
    end;
    t.heap.(t.size) <- { at; seq = t.next_seq; frame };
    t.next_seq <- t.next_seq + 1;
    t.size <- t.size + 1;
    sift_up t (t.size - 1);
    if at > t.max_seen then t.max_seen <- at;
    release_until t (t.max_seen -. t.horizon)

  let flush t = release_until t infinity
end

type flow_state = { mutable seq : int; mutable started : bool }

type t = {
  transport : transport;
  rng : Prng.t;
  mtu : int;
  sorter : Psort.t;
  (* TCP sequence state, keyed by (src ip, dst ip). *)
  flows : (int * int, flow_state) Hashtbl.t;
  injector : Fault.t;
  c_written : Nt_obs.Obs.counter;
}

let create ?obs ?monitor_loss ?fault ?(seed = 77L) ?(mtu = 9000) ~transport ~writer () =
  (* The written/dropped accessors feed the conservation invariant, so
     the default registry must count: a private enabled one. *)
  let obs = match obs with Some o -> o | None -> Nt_obs.Obs.create () in
  let rng = Prng.create seed in
  let plan =
    match (fault, monitor_loss) with
    | Some plan, _ -> plan
    | None, Some p when p > 0. -> Fault.bernoulli_loss p
    | None, _ -> Fault.none
  in
  (* The injector gets its own derived stream so that enabling faults
     does not perturb the flow ISNs drawn from [rng]. *)
  let injector = Fault.create ~obs ~seed:(Prng.next_int64 (Prng.copy rng)) plan in
  let c_written =
    Nt_obs.Obs.counter obs ~help:"packets written to the capture" "pipe.packets_written"
  in
  let emit at frame =
    match Fault.apply injector ~time:at frame with
    | [ (t, bytes) ] ->
        Pcap.write writer ~time:t bytes;
        Nt_obs.Obs.inc c_written
    | out ->
        List.iter
          (fun (t, bytes) ->
            Pcap.write writer ~time:t bytes;
            Nt_obs.Obs.inc c_written)
          out
  in
  {
    transport;
    rng;
    mtu;
    sorter = Psort.create ~horizon:630. emit;
    flows = Hashtbl.create 64;
    injector;
    c_written;
  }

let client_port ip = 600 + (ip land 0x3FF)

let encode_call_msg (r : Record.t) =
  let e = E.create ~initial_size:512 () in
  let proc = Record.proc r in
  let proc_num =
    match Nt_nfs.Proc.number ~version:r.version proc with Some n -> n | None -> 0
  in
  Rpc.encode_call e
    {
      xid = r.xid;
      rpcvers = 2;
      prog = Rpc.nfs_program;
      vers = r.version;
      proc = proc_num;
      cred =
        Auth_unix { stamp = 0; machine = "client"; uid = r.uid; gid = r.gid; gids = [ r.gid ] };
      verf = Auth_null;
    };
  (if r.version = 2 then Nt_nfs.V2.encode_call e r.call else Nt_nfs.V3.encode_call e r.call);
  E.contents e

let encode_reply_msg (r : Record.t) result =
  let e = E.create ~initial_size:512 () in
  Rpc.encode_reply e { xid = r.xid; verf = Auth_null; status = Accepted Success };
  let proc = Record.proc r in
  (if r.version = 2 then Nt_nfs.V2.encode_result e ~proc result
   else Nt_nfs.V3.encode_result e ~proc result);
  E.contents e

let flow t ~src ~dst =
  match Hashtbl.find_opt t.flows (src, dst) with
  | Some f -> f
  | None ->
      let f = { seq = Prng.bits30 t.rng land 0xFFFFFF; started = false } in
      Hashtbl.add t.flows (src, dst) f;
      f

let push_udp t ~at ~src ~dst ~src_port ~dst_port msg =
  let frame =
    Frame.encode (Frame.udp ~src_ip:src ~dst_ip:dst ~src_port ~dst_port msg)
  in
  Psort.push t.sorter at frame

let push_tcp t ~at ~src ~dst ~src_port ~dst_port msg =
  let f = flow t ~src ~dst in
  if not f.started then begin
    f.started <- true;
    let syn =
      Frame.encode
        (Frame.tcp ~syn:true ~src_ip:src ~dst_ip:dst ~src_port ~dst_port ~seq:f.seq "")
    in
    Psort.push t.sorter (at -. 0.000001) syn;
    f.seq <- (f.seq + 1) land 0xFFFFFFFF
  end;
  let stream = Rm.frame msg in
  let mss = t.mtu - 40 in
  let n = String.length stream in
  let off = ref 0 in
  let k = ref 0 in
  while !off < n do
    let len = min mss (n - !off) in
    let segment = String.sub stream !off len in
    let frame =
      Frame.encode
        (Frame.tcp ~src_ip:src ~dst_ip:dst ~src_port ~dst_port ~seq:f.seq segment)
    in
    (* Successive segments of one message are microseconds apart. *)
    Psort.push t.sorter (at +. (float_of_int !k *. 2e-6)) frame;
    f.seq <- (f.seq + len) land 0xFFFFFFFF;
    off := !off + len;
    incr k
  done

let push t (r : Record.t) =
  let src_port = client_port r.client in
  let send ~at ~src ~dst ~sp ~dp msg =
    match t.transport with
    | Udp_transport -> push_udp t ~at ~src ~dst ~src_port:sp ~dst_port:dp msg
    | Tcp_transport -> push_tcp t ~at ~src ~dst ~src_port:sp ~dst_port:dp msg
  in
  let call_msg = encode_call_msg r in
  send ~at:r.time ~src:r.client ~dst:r.server ~sp:src_port ~dp:nfs_port call_msg;
  match (r.reply_time, r.result) with
  | Some rt, Some result ->
      let reply_msg = encode_reply_msg r result in
      send ~at:rt ~src:r.server ~dst:r.client ~sp:nfs_port ~dp:src_port reply_msg
  | _ -> ()

let finish t = Psort.flush t.sorter
let packets_written t = Nt_obs.Obs.value t.c_written
let packets_dropped t = (Fault.counts t.injector).dropped
let faults t = Fault.counts t.injector
