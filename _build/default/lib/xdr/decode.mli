(** XDR decoding (RFC 4506).

    A decoder is a cursor over an immutable string. Decoding failures —
    truncated data, absurd lengths — raise {!Error}; the capture engine
    catches it per-packet so one malformed packet cannot poison a trace. *)

exception Error of string

type t

val of_string : ?pos:int -> ?len:int -> string -> t
(** Decode window over [string]; defaults to the whole string. *)

val pos : t -> int
(** Absolute position of the cursor within the underlying string. *)

val remaining : t -> int
val at_end : t -> bool

val uint32 : t -> int
val int32 : t -> int32
val uint64 : t -> int64
val int64 : t -> int64
val bool : t -> bool
val enum : t -> int

val fixed_opaque : t -> int -> string
(** [fixed_opaque t n] reads [n] bytes plus padding. *)

val opaque : t -> string
(** Length-prefixed opaque. Raises {!Error} if the length exceeds the
    remaining window (corrupt or truncated message). *)

val string : t -> string

val array : t -> (t -> 'a) -> 'a list
(** Length-prefixed array. The count is sanity-checked against the
    remaining bytes (each element needs at least 4 bytes). *)

val optional : t -> (t -> 'a) -> 'a option

val skip : t -> int -> unit
(** Advance the cursor by [n] bytes (no padding applied). *)
