(** Mask-gated resource sampler: the one audited path for every heap
    and RSS number the tree reports.

    Cost discipline matches {!Progress}: {!tick} from a hot loop costs
    an increment and a mask test; the clock is probed ~20x per
    interval; [Gc.quick_stat] plus a [/proc/self/status] read run once
    per interval. Each sample lands in gauges ([rt.heap_words],
    [rt.top_heap_words], [rt.rss_bytes], [rt.rss_hwm_bytes],
    [rt.minor_collections], [rt.major_collections], [rt.compactions],
    counter [rt.samples]) and in a bounded drop-oldest ring served over
    the exporter's [/series] endpoint. Where [/proc/self/status] does
    not exist the RSS fields read 0 — the sampler degrades, never
    raises. *)

type sample = {
  at : float;  (** registry clock (monotone-clamped) *)
  heap_words : int;
  top_heap_words : int;
  minor_words : float;
  promoted_words : float;
  major_words : float;
  minor_collections : int;
  major_collections : int;
  compactions : int;
  rss_bytes : int;
  rss_hwm_bytes : int;
}

type delta = {
  d_seconds : float;
  d_minor_words : float;
  d_major_words : float;
  d_promoted_words : float;
  d_minor_collections : int;
  d_major_collections : int;
  d_compactions : int;
}

type t

val create : ?interval:float -> ?cap:int -> Obs.t -> t
(** [interval] (default 1s, floor 10ms) between expensive samples;
    [cap] (default 256) ring entries, oldest evicted first. A baseline
    sample is taken immediately, so the ring is never empty. *)

val tick : t -> unit
(** Hot-path heartbeat; takes a sample when the interval has elapsed. *)

val sample_now : t -> sample
(** Unconditional sample (report boundaries, scrape time). *)

val last : t -> sample
val samples : t -> sample list
(** Ring contents, oldest first; length ≤ cap. *)

val taken : t -> int
val evicted : t -> int
val cap : t -> int

val top_heap_words : t -> int
val rss_hwm_bytes : t -> int
(** Convenience reads of the most recent sample. *)

val delta : older:sample -> newer:sample -> delta
(** Componentwise difference, clamped at zero — Gc counters never run
    backwards, so a negative raw delta is always a clock artifact. *)

val set_footprints : t -> (unit -> (string * Footprint.t) list) -> unit
(** Register the provider of per-component state footprints; each
    sample republishes them as [nt_state_cards{component}] /
    [nt_state_words{component}] gauges and {!series_json} embeds
    them. *)

val publish_footprints : t -> (string * Footprint.t) list
(** Force one publication cycle; returns what was published. *)

val series_json : ?refresh:bool -> t -> string
(** The ["nt_obs_series/1"] document: ring samples (oldest first) plus
    the current footprint map. [refresh] (default true) takes a fresh
    sample first so a scrape always sees the present. *)
