module Capture = Nt_trace.Capture

let fire emit rule fmt =
  Printf.ksprintf (fun detail -> emit (Finding.v rule ~index:(-1) ~time:Float.nan detail)) fmt

let check ~emit (s : Capture.stats) =
  (* Conservation laws (DESIGN.md "Fault model & loss accounting"). *)
  let counters =
    [
      ("frames", s.frames); ("undecodable_frames", s.undecodable_frames);
      ("corrupt_frames", s.corrupt_frames); ("rpc_messages", s.rpc_messages);
      ("rpc_errors", s.rpc_errors); ("non_nfs", s.non_nfs); ("calls", s.calls);
      ("replies", s.replies); ("duplicate_calls", s.duplicate_calls);
      ("duplicate_replies", s.duplicate_replies); ("orphan_replies", s.orphan_replies);
      ("lost_replies", s.lost_replies); ("tcp_gaps", s.tcp_gaps);
      ("salvaged_records", s.salvaged_records); ("skipped_pcap_bytes", s.skipped_pcap_bytes);
      ("truncated_pcap_tails", s.truncated_pcap_tails);
    ]
  in
  List.iter
    (fun (name, v) ->
      if v < 0 then fire emit Rule.loss_accounting "counter %s is negative (%d)" name v)
    counters;
  if s.calls <> s.replies + s.lost_replies then
    fire emit Rule.loss_accounting "calls (%d) <> replies (%d) + lost_replies (%d)" s.calls
      s.replies s.lost_replies;
  if s.frames < s.undecodable_frames + s.corrupt_frames then
    fire emit Rule.loss_accounting
      "frames (%d) < undecodable (%d) + corrupt (%d)" s.frames s.undecodable_frames
      s.corrupt_frames;
  (* Loss and damage indicators: legitimate under degraded capture,
     never present on a clean one. *)
  if s.orphan_replies > 0 || s.lost_replies > 0 || s.tcp_gaps > 0 then
    fire emit Rule.capture_loss "orphan_replies=%d lost_replies=%d tcp_gaps=%d"
      s.orphan_replies s.lost_replies s.tcp_gaps;
  if s.undecodable_frames > 0 || s.corrupt_frames > 0 || s.rpc_errors > 0 then
    fire emit Rule.frame_damage "undecodable=%d corrupt=%d rpc_errors=%d"
      s.undecodable_frames s.corrupt_frames s.rpc_errors;
  if s.skipped_pcap_bytes > 0 && s.salvaged_records = 0 && s.truncated_pcap_tails = 0 then
    fire emit Rule.salvage_gap
      "%d pcap bytes skipped with no salvaged record or truncated tail" s.skipped_pcap_bytes
