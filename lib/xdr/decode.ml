exception Error of string

type t = { data : string; limit : int; mutable cursor : int }

let of_string ?(pos = 0) ?len data =
  let len = match len with Some l -> l | None -> String.length data - pos in
  if pos < 0 || len < 0 || pos + len > String.length data then
    raise (Error "decode window out of bounds");
  { data; limit = pos + len; cursor = pos }

let pos t = t.cursor
let remaining t = t.limit - t.cursor
let at_end t = t.cursor >= t.limit

let need t n = if remaining t < n then raise (Error (Printf.sprintf "truncated: need %d bytes, have %d" n (remaining t)))

let byte t i = Char.code (String.unsafe_get t.data i)

let uint32 t =
  need t 4;
  let c = t.cursor in
  t.cursor <- c + 4;
  (byte t c lsl 24) lor (byte t (c + 1) lsl 16) lor (byte t (c + 2) lsl 8) lor byte t (c + 3)

let int32 t = Int32.of_int (uint32 t)

let uint64 t =
  let hi = uint32 t in
  let lo = uint32 t in
  Int64.logor (Int64.shift_left (Int64.of_int hi) 32) (Int64.of_int lo)

let int64 = uint64

let bool t =
  match uint32 t with
  | 0 -> false
  | 1 -> true
  | n -> raise (Error (Printf.sprintf "bad boolean %d" n))

let enum t =
  let v = uint32 t in
  if v land 0x80000000 <> 0 then v - 0x100000000 else v

let fixed_opaque t n =
  if n < 0 then raise (Error "negative opaque length");
  need t n;
  let s = String.sub t.data t.cursor n in
  let pad = (4 - (n mod 4)) mod 4 in
  need t (n + pad);
  t.cursor <- t.cursor + n + pad;
  s
[@@nt.alloc_ok "materializes the decoded opaque; the copy is the decoded value"]

let opaque t =
  let n = uint32 t in
  if n > remaining t then raise (Error (Printf.sprintf "opaque length %d exceeds window" n));
  fixed_opaque t n

let string = opaque

let array t dec =
  let n = uint32 t in
  if n * 4 > remaining t then raise (Error (Printf.sprintf "array count %d exceeds window" n));
  let rec go i acc = if i = 0 then List.rev acc else go (i - 1) (dec t :: acc) in
  go n []
[@@nt.alloc_ok "materializes the decoded array as a list; the list is the decoded value"]

let optional t dec = if bool t then Some (dec t) else None

let skip t n =
  need t n;
  t.cursor <- t.cursor + n
