lib/nfs/v3.ml: Bytes Fh Int64 List Nt_xdr Ops Option Printf Proc String Types
