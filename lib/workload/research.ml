module Prng = Nt_util.Prng
module Dist = Nt_util.Dist
module Tw = Nt_util.Trace_week
module Ip_addr = Nt_net.Ip_addr
module Engine = Nt_sim.Engine
module Server = Nt_sim.Server
module Sim_fs = Nt_sim.Sim_fs
module Client = Nt_sim.Client

type config = {
  users : int;
  seed : int64;
  scale_note : float;
  v2_fraction : float;
  edit_bursts_per_user_day : float;
  compiles_per_user_day : float;
  browse_sessions_per_user_day : float;
  applet_churn_per_user_day : float;
  log_writers_per_user : float;
  cron_jobs_per_night : float;
  source_files_per_user : int;
}

let default_config =
  {
    users = 40;
    seed = 2003L;
    scale_note = 0.01;
    v2_fraction = 0.3;
    edit_bursts_per_user_day = 2.5;
    compiles_per_user_day = 2.2;
    browse_sessions_per_user_day = 1.0;
    applet_churn_per_user_day = 2.5;
    log_writers_per_user = 9.0;  (* log bursts per user-day *)
    cron_jobs_per_night = 13.0;
    source_files_per_user = 24;
  }

type user = {
  index : int;
  uid : int;
  gid : int;
  uname : string;
  client : Client.t;  (** the user's own workstation *)
  rng : Prng.t;
  mutable applet_seq : int;
  mutable cache_seq : int;
  mutable cache_files : string list;  (** browser cache names, oldest last *)
}

type t = {
  config : config;
  engine : Engine.t;
  rng : Prng.t;
  users : user array;
  batch_client : Client.t;  (** shared compute host running cron jobs *)
  mutable stop : float;
  mutable compiles : int;
}

let uname_of i = Printf.sprintf "dev%03d" i
let src_name j = Printf.sprintf "module%02d.c" j
let obj_name j = Printf.sprintf "module%02d.o" j

let populate (cfg : config) rng server =
  let fs = Server.fs server in
  let t0 = Tw.week_start -. (60. *. 86400.) in
  let home_root = Sim_fs.mkdir_path fs ~time:t0 [ "home" ] in
  for i = 0 to cfg.users - 1 do
    let home = Sim_fs.mkdir fs ~time:t0 ~parent:home_root ~name:(uname_of i) ~mode:0o755 in
    let uid = 2000 + i in
    let file ?(parent = home) name size =
      let n = Sim_fs.create_file fs ~time:t0 ~parent ~name ~mode:0o644 ~uid ~gid:200 in
      Sim_fs.write fs ~time:t0 n ~offset:0L ~count:size;
      n
    in
    ignore (file ".cshrc" (400 + Prng.int rng 800));
    ignore (file ".emacs" (1_000 + Prng.int rng 9_000));
    ignore (file ".history" (2_000 + Prng.int rng 10_000));
    ignore (file ".Xdefaults" (500 + Prng.int rng 2_000));
    (* Source tree with a CVS sandbox. *)
    let src = Sim_fs.mkdir fs ~time:t0 ~parent:home ~name:"src" ~mode:0o755 in
    let proj = Sim_fs.mkdir fs ~time:t0 ~parent:src ~name:"proj" ~mode:0o755 in
    ignore (file ~parent:proj "Makefile" (1_500 + Prng.int rng 3_000));
    for j = 0 to cfg.source_files_per_user - 1 do
      let size = 2_000 + Prng.int rng 40_000 in
      ignore (file ~parent:proj (src_name j) size);
      ignore (file ~parent:proj (obj_name j) (size + Prng.int rng 20_000))
    done;
    ignore (file ~parent:proj "prog" (200_000 + Prng.int rng 1_500_000));
    let cvs = Sim_fs.mkdir fs ~time:t0 ~parent:proj ~name:"CVS" ~mode:0o755 in
    ignore (file ~parent:cvs "Entries" (800 + Prng.int rng 2_000));
    ignore (file ~parent:cvs "Root" 64);
    ignore (file ~parent:cvs "Repository" 48);
    (* RCS archives. *)
    let rcs = Sim_fs.mkdir fs ~time:t0 ~parent:proj ~name:"RCS" ~mode:0o755 in
    for j = 0 to min 7 (cfg.source_files_per_user - 1) do
      ignore (file ~parent:rcs (src_name j ^ ",v") (6_000 + Prng.int rng 80_000))
    done;
    (* Browser cache, window-manager state, logs, data. *)
    let dot_netscape = Sim_fs.mkdir fs ~time:t0 ~parent:home ~name:".netscape" ~mode:0o700 in
    ignore (Sim_fs.mkdir fs ~time:t0 ~parent:dot_netscape ~name:"cache" ~mode:0o700);
    ignore (file ~parent:dot_netscape "history.db" (30_000 + Prng.int rng 200_000));
    ignore (Sim_fs.mkdir fs ~time:t0 ~parent:home ~name:".gnome" ~mode:0o700);
    let var = Sim_fs.mkdir fs ~time:t0 ~parent:home ~name:"var" ~mode:0o755 in
    ignore (file ~parent:var "run.log" (4_000 + Prng.int rng 30_000));
    ignore (file ~parent:var "index.db" (8_000 + Prng.int rng 60_000));
    let data = Sim_fs.mkdir fs ~time:t0 ~parent:home ~name:"data" ~mode:0o755 in
    for j = 0 to 2 do
      let size = int_of_float (Dist.pareto rng ~alpha:1.1 ~x_min:1_000_000.) in
      ignore (file ~parent:data (Printf.sprintf "dataset-%d.dat" j) (min size 24_000_000))
    done
  done

let setup cfg ~engine ~server ~sink =
  let rng = Prng.create cfg.seed in
  populate cfg rng server;
  let users =
    Array.init cfg.users (fun i ->
        let version = if Prng.chance rng cfg.v2_fraction then 2 else 3 in
        let ip = Ip_addr.v 10 2 (i / 250) (1 + (i mod 250)) in
        let base = Client.default_config ~ip ~version in
        let client_cfg =
          let base = { base with reorder_prob = 0.8; reorder_mean = 0.0015; reorder_cap = 0.004;
                       cache_capacity = 4 * 1024 * 1024 } in
          if version = 2 then { base with rsize = 8192; wsize = 8192 }
          else { base with rsize = 16384; wsize = 16384 }
        in
        {
          index = i;
          uid = 2000 + i;
          gid = 200;
          uname = uname_of i;
          client = Client.create client_cfg ~server ~sink ~rng:(Prng.split rng);
          rng = Prng.split rng;
          applet_seq = 0;
          cache_seq = 0;
          cache_files = [];
        })
  in
  let batch_cfg =
    { (Client.default_config ~ip:(Ip_addr.v 10 2 9 9) ~version:3) with rsize = 16384; wsize = 16384 }
  in
  let batch_client = Client.create batch_cfg ~server ~sink ~rng:(Prng.split rng) in
  { config = cfg; engine; rng; users; batch_client; stop = infinity; compiles = 0 }

let pick_user t = t.users.(Prng.int t.rng (Array.length t.users))

let home u = [ "home"; u.uname ]
let proj u = home u @ [ "src"; "proj" ]

let open_and_read s fh =
  match Client.open_file s fh with
  | `Changed -> ignore (Client.read_whole s fh)
  | `Cached | `Error -> ()

(* --- editing --- *)

let edit_burst t time =
  let u = pick_user t in
  let s = Client.session u.client ~time ~uid:u.uid ~gid:u.gid in
  let j = Prng.int u.rng t.config.source_files_per_user in
  let name = src_name j in
  match Client.lookup_path s (proj u) with
  | None -> ()
  | Some proj_fh -> (
      match Client.lookup_path s (proj u @ [ name ]) with
      | None -> ()
      | Some src_fh ->
          open_and_read s src_fh;
          let size =
            Int64.to_int (Option.value (Client.cached_size s src_fh) ~default:8_000L)
          in
          let saves = 1 + Prng.int u.rng 2 in
          let autosave = "#" ^ name ^ "#" in
          for k = 1 to saves do
            (* Editing pause, then the autosave file appears. *)
            Client.set_now s (Client.now s +. Dist.uniform u.rng ~lo:20. ~hi:120.);
            if Prng.chance u.rng 0.4 then begin
              match Client.create_file s ~dir:proj_fh ~name:autosave ~mode:0o600 () with
              | Some af -> Client.write s af ~offset:0L ~len:size ~sync:true
              | None -> ()
            end;
            Client.set_now s (Client.now s +. Dist.uniform u.rng ~lo:10. ~hi:60.);
            (* Save: back up to name~, rewrite the file, drop autosave. *)
            let new_size = max 500 (size + Prng.int_in u.rng (-2000) 4000) in
            (match Client.create_file s ~dir:proj_fh ~name:(name ^ "~") ~mode:0o644 () with
            | Some bf -> Client.write s bf ~offset:0L ~len:size ~sync:false
            | None -> ());
            Client.write s src_fh ~offset:0L ~len:new_size ~sync:false;
            if new_size < size then Client.truncate s src_fh (Int64.of_int new_size);
            Client.remove s ~dir:proj_fh ~name:autosave;
            ignore k
          done)

(* --- compiles --- *)

let compile t time =
  t.compiles <- t.compiles + 1;
  let u = pick_user t in
  let s = Client.session u.client ~time ~uid:u.uid ~gid:u.gid in
  match Client.lookup_path s (proj u) with
  | None -> ()
  | Some proj_fh ->
      (* make stats every target and prerequisite. *)
      let stat name =
        match Client.lookup_path s (proj u @ [ name ]) with
        | Some fh -> ignore (Client.getattr s fh)
        | None -> ()
      in
      stat "Makefile";
      for j = 0 to t.config.source_files_per_user - 1 do
        stat (src_name j);
        stat (obj_name j)
      done;
      (* Rebuild a few objects: read source (usually cached), overwrite
         the .o, run the linker through a transient temp file. *)
      let rebuilt = 1 + Prng.int u.rng 2 in
      for _ = 1 to rebuilt do
        let j = Prng.int u.rng t.config.source_files_per_user in
        (match Client.lookup_path s (proj u @ [ src_name j ]) with
        | Some src_fh -> open_and_read s src_fh
        | None -> ());
        match Client.lookup_path s (proj u @ [ obj_name j ]) with
        | Some obj_fh ->
            let osize = 10_000 + Prng.int u.rng 70_000 in
            if Prng.chance u.rng 0.5 then begin
              (* cc opens the output O_TRUNC: SETATTR size=0, then write. *)
              Client.truncate s obj_fh 0L;
              Client.write s obj_fh ~offset:0L ~len:osize ~sync:false
            end
            else begin
              (* ...or the build writes a temp object and renames it. *)
              let otmp = Printf.sprintf "ccXX%04d.o" (Prng.int u.rng 10_000) in
              match Client.lookup_path s (proj u) with
              | Some proj_fh -> (
                  match Client.create_file s ~dir:proj_fh ~name:otmp ~mode:0o644 () with
                  | Some tf ->
                      Client.write s tf ~offset:0L ~len:osize ~sync:false;
                      Client.rename s ~from_dir:proj_fh ~from_name:otmp ~to_dir:proj_fh
                        ~to_name:(obj_name j)
                  | None -> ())
              | None -> ()
            end
        | None -> ()
      done;
      (* Link step on ~40% of compiles. *)
      if Prng.chance u.rng 0.45 then begin
        let tmp = Printf.sprintf "ld-%05d.tmp" (Prng.int u.rng 100000) in
        let exe_size = 300_000 + Prng.int u.rng 900_000 in
        (* ld writes the complete image to a temp file and renames it
           over the target, so the old executable's blocks die by
           deletion, not overwrite. *)
        (match Client.create_file s ~dir:proj_fh ~name:tmp ~mode:0o600 () with
        | Some tf ->
            (* ld emits sections, hopping between them for fixups. *)
            Io_patterns.seeky_write u.rng s tf ~total:exe_size ~seg_min:8_000 ~seg_max:32_000
              ~jump_prob:0.5 ~sync:false;
            Client.rename s ~from_dir:proj_fh ~from_name:tmp ~to_dir:proj_fh ~to_name:"prog"
        | None -> ());
        (* CVS bookkeeping around substantial changes. *)
        if Prng.chance u.rng 0.3 then begin
          (* CVS locks the repository directory during the commit. *)
          (match Client.lookup_path s (proj u @ [ "RCS" ]) with
          | Some rcs_dir ->
              (match Client.create_file s ~dir:rcs_dir ~name:"#cvs.lock" ~mode:0o600 () with
              | Some _ ->
                  Client.set_now s (Client.now s +. Dist.uniform u.rng ~lo:0.05 ~hi:0.30);
                  Client.remove s ~dir:rcs_dir ~name:"#cvs.lock"
              | None -> ())
          | None -> ());
          (match Client.lookup_path s (proj u @ [ "CVS"; "Entries" ]) with
          | Some fh ->
              open_and_read s fh;
              Client.write s fh ~offset:0L ~len:(800 + Prng.int u.rng 2_000) ~sync:true
          | None -> ());
          let j = Prng.int u.rng (min 8 t.config.source_files_per_user) in
          match Client.lookup_path s (proj u @ [ "RCS"; src_name j ^ ",v" ]) with
          | Some fh ->
              open_and_read s fh;
              Client.append s fh ~len:(500 + Prng.int u.rng 4_000) ~sync:true
          | None -> ()
        end
      end

(* --- browser sessions --- *)

let browse_session t time =
  let u = pick_user t in
  let s = Client.session u.client ~time ~uid:u.uid ~gid:u.gid in
  match Client.lookup_path s (home u @ [ ".netscape"; "cache" ]) with
  | None -> ()
  | Some cache_dir ->
      let views = 4 + Prng.int u.rng 16 in
      for _ = 1 to views do
        Client.set_now s (Client.now s +. Dist.uniform u.rng ~lo:8. ~hi:45.);
        u.cache_seq <- u.cache_seq + 1;
        let name = Printf.sprintf "cache%08x" ((u.index * 1_000_000) + u.cache_seq) in
        (match Client.create_file s ~dir:cache_dir ~name ~mode:0o600 () with
        | Some fh ->
            let size = 2_000 + Prng.int u.rng 28_000 in
            Client.write s fh ~offset:0L ~len:size ~sync:false;
            u.cache_files <- u.cache_files @ [ name ]
        | None -> ());
        (* Revisits hit existing entries. *)
        if Prng.chance u.rng 0.3 then begin
          match u.cache_files with
          | old :: _ -> (
              match Client.lookup_path s (home u @ [ ".netscape"; "cache"; old ]) with
              | Some fh -> open_and_read s fh
              | None -> ())
          | [] -> ()
        end;
        (* History database: the unbuffered index write. *)
        if Prng.chance u.rng 0.25 then begin
          match Client.lookup_path s (home u @ [ ".netscape"; "history.db" ]) with
          | Some fh ->
              let size =
                Int64.to_int (Option.value (Client.cached_size s fh) ~default:60_000L)
              in
              let page () = Int64.of_int (Prng.int u.rng (max 1 (size - 4096))) in
              if Prng.chance u.rng 0.15 then ignore (Client.read s fh ~offset:(page ()) ~len:4096);
              Client.write s fh ~offset:(page ()) ~len:(600 + Prng.int u.rng 1_000) ~sync:true
          | None -> ()
        end;
        (* LRU eviction keeps the cache bounded. *)
        if List.length u.cache_files > 20 then begin
          match u.cache_files with
          | victim :: rest ->
              Client.remove s ~dir:cache_dir ~name:victim;
              u.cache_files <- rest
          | [] -> ()
        end
      done

(* --- window-manager applet files --- *)

let applet_churn t time =
  let u = pick_user t in
  let s = Client.session u.client ~time ~uid:u.uid ~gid:u.gid in
  match Client.lookup_path s (home u @ [ ".gnome" ]) with
  | None -> ()
  | Some dir ->
      u.applet_seq <- u.applet_seq + 1;
      let name = Printf.sprintf "Applet_%d_Extern" ((u.index * 100_000) + u.applet_seq) in
      (match Client.create_file s ~dir ~name ~mode:0o600 () with
      | Some fh -> if Prng.chance u.rng 0.3 then Client.write s fh ~offset:0L ~len:(200 + Prng.int u.rng 1_500) ~sync:true
      | None -> ());
      Client.set_now s (Client.now s +. Dist.uniform u.rng ~lo:0.5 ~hi:30.);
      Client.remove s ~dir ~name

(* --- unbuffered log/index bursts: blocks that die in under a second --- *)

let log_burst t time =
  let u = pick_user t in
  let s = Client.session u.client ~time ~uid:u.uid ~gid:u.gid in
  let target = if Prng.chance u.rng 0.5 then "run.log" else "index.db" in
  match Client.lookup_path s (home u @ [ "var"; target ]) with
  | None -> ()
  | Some fh ->
      (* Index updates are read-modify-write: pull a page first. *)
      if target = "index.db" && Prng.chance u.rng 0.5 then
        ignore (Client.read s fh ~offset:0L ~len:2048);
      (* dbm-style files are written sparsely: hash buckets land past
         EOF, materialising extension blocks. *)
      if target = "index.db" && Prng.chance u.rng 0.5 then begin
        match Client.cached_size s fh with
        | Some size ->
            let hole = 32_768 + Prng.int u.rng 98_304 in
            Client.write s fh
              ~offset:(Int64.add size (Int64.of_int hole))
              ~len:(512 + Prng.int u.rng 1_500) ~sync:true
        | None -> ()
      end;
      let writes = 8 + Prng.int u.rng 12 in
      let pos = ref 0 in
      for _ = 1 to writes do
        let len = 200 + Prng.int u.rng 1_400 in
        Client.write s fh ~offset:(Int64.of_int !pos) ~len ~sync:true;
        pos := !pos + len;
        (* Unbuffered appenders sync every record, fractions of a
           second apart. *)
        Client.set_now s (Client.now s +. Dist.uniform u.rng ~lo:0.05 ~hi:0.6)
      done;
      (* Periodic rotation truncates the log back. *)
      if Prng.chance u.rng 0.15 then Client.truncate s fh 0L

(* --- desktop heartbeat: the cache-validation metadata stream --- *)

let heartbeat t time =
  let u = pick_user t in
  let s = Client.session u.client ~time ~uid:u.uid ~gid:u.gid in
  let stat path =
    match Client.lookup_path s path with
    | Some fh -> ignore (Client.getattr s fh)
    | None -> ()
  in
  stat (home u @ [ ".history" ]);
  if Prng.chance u.rng 0.6 then stat (home u @ [ ".emacs" ]);
  if Prng.chance u.rng 0.6 then stat (home u @ [ ".Xdefaults" ]);
  if Prng.chance u.rng 0.4 then stat (home u @ [ "src"; "proj"; "Makefile" ]);
  if Prng.chance u.rng 0.35 then begin
    (* Shell history is appended on every command batch. *)
    match Client.lookup_path s (home u @ [ ".history" ]) with
    | Some fh -> Client.append s fh ~len:(100 + Prng.int u.rng 400) ~sync:true
    | None -> ()
  end

(* --- short inspection reads: head/grep/editor previews --- *)

let peek t time =
  let u = pick_user t in
  let s = Client.session u.client ~time ~uid:u.uid ~gid:u.gid in
  let j = Prng.int u.rng t.config.source_files_per_user in
  let path =
    if Prng.chance u.rng 0.5 then proj u @ [ src_name j ]
    else if Prng.chance u.rng 0.5 then proj u @ [ "RCS"; src_name (j mod 8) ^ ",v" ]
    else home u @ [ ".emacs" ]
  in
  match Client.lookup_path s path with
  | None -> ()
  | Some fh ->
      (* A partial read never marks the cache whole, so peeks recur. *)
      ignore (Client.read s fh ~offset:0L ~len:(2048 + Prng.int u.rng 4096))

(* --- light email use: saving mail to folders under a lock --- *)

let mail_save t time =
  let u = pick_user t in
  let s = Client.session u.client ~time ~uid:u.uid ~gid:u.gid in
  match Client.lookup_path s (home u) with
  | None -> ()
  | Some home_fh -> (
      let folder = "mbox" in
      let fh =
        match Client.lookup_path s (home u @ [ folder ]) with
        | Some fh -> Some fh
        | None -> Client.create_file s ~dir:home_fh ~name:folder ~mode:0o600 ()
      in
      match fh with
      | None -> ()
      | Some folder_fh -> (
          match Client.create_file s ~dir:home_fh ~name:(folder ^ ".lock") ~mode:0o600 () with
          | Some _ ->
              Client.append s folder_fh ~len:(1_500 + Prng.int u.rng 8_000) ~sync:true;
              Client.remove s ~dir:home_fh ~name:(folder ^ ".lock")
          | None -> ()))

(* --- interactive data poking: seeky reads over big files --- *)

let data_poke t time =
  let u = pick_user t in
  let s = Client.session u.client ~time ~uid:u.uid ~gid:u.gid in
  let j = Prng.int u.rng 3 in
  match Client.lookup_path s (home u @ [ "data"; Printf.sprintf "dataset-%d.dat" j ]) with
  | None -> ()
  | Some fh -> (
      match Client.getattr s fh with
      | None -> ()
      | Some attr ->
          let size = Int64.to_int attr.size in
          if size > 65536 then begin
            (* grep/indexing-style partial scans: sequential stretches
               separated by seeks. *)
            let stretches = 3 + Prng.int u.rng 6 in
            for _ = 1 to stretches do
              let off = Prng.int u.rng (max 1 (size - 65536)) in
              let len = 16384 + Prng.int u.rng 49152 in
              ignore (Client.read s fh ~offset:(Int64.of_int off) ~len:(min len (size - off)));
              Client.set_now s (Client.now s +. Dist.uniform u.rng ~lo:0.05 ~hi:0.4)
            done
          end)

(* --- night-time cron batch jobs --- *)

let cron_job t time =
  let u = pick_user t in
  let s = Client.session t.batch_client ~time ~uid:u.uid ~gid:u.gid in
  let j = Prng.int t.rng 3 in
  match Client.lookup_path s (home u @ [ "data"; Printf.sprintf "dataset-%d.dat" j ]) with
  | None -> ()
  | Some data_fh ->
      (* Data processing: stream the dataset, write a result file. The
         shared batch host's cache is cold across users, so these reads
         really hit the server. *)
      ignore (Client.open_file s data_fh);
      let got = Client.read_whole s data_fh in
      (* Some jobs post-process in place, rewriting the dataset. *)
      if Prng.chance t.rng 0.25 then
        Io_patterns.seeky_write t.rng s data_fh ~total:got ~seg_min:16_000 ~seg_max:64_000
          ~jump_prob:0.3 ~sync:false;
      (match Client.lookup_path s (home u @ [ "data" ]) with
      | Some dir -> (
          let out = Printf.sprintf "result-%05d.out" (Prng.int t.rng 100_000) in
          match Client.create_file s ~dir ~name:out ~mode:0o644 () with
          | Some out_fh ->
              Client.write s out_fh ~offset:0L ~len:(max 10_000 (got / 3)) ~sync:false;
              (* Most results are transient and cleaned up by the job. *)
              if Prng.chance t.rng 0.8 then begin
                Client.set_now s (Client.now s +. Dist.uniform t.rng ~lo:30. ~hi:600.);
                Client.remove s ~dir ~name:out
              end
          | None -> ())
      | None -> ())

(* --- drivers --- *)

let rec drive t ~base_rate ~intensity ~action time =
  if time < t.stop then begin
    action t time;
    let rate = Float.max 1e-9 (base_rate *. intensity time) in
    let next = time +. Dist.exponential t.rng ~rate in
    Engine.schedule t.engine next (fun () -> drive t ~base_rate ~intensity ~action next)
  end

let schedule t ~start ~stop =
  t.stop <- stop;
  let cfg = t.config in
  let per_sec daily = float_of_int cfg.users *. daily /. 86400. in
  let arm ~base_rate ~intensity ~action =
    let first = start +. Prng.float t.rng 60. in
    Engine.schedule t.engine first (fun () -> drive t ~base_rate ~intensity ~action first)
  in
  let interactive = Diurnal.eecs_interactive_intensity in
  arm ~base_rate:(per_sec cfg.edit_bursts_per_user_day) ~intensity:interactive
    ~action:(fun t time -> edit_burst t time);
  arm ~base_rate:(per_sec cfg.compiles_per_user_day) ~intensity:interactive
    ~action:(fun t time -> compile t time);
  arm ~base_rate:(per_sec cfg.browse_sessions_per_user_day) ~intensity:interactive
    ~action:(fun t time -> browse_session t time);
  arm ~base_rate:(per_sec cfg.applet_churn_per_user_day) ~intensity:interactive
    ~action:(fun t time -> applet_churn t time);
  arm ~base_rate:(per_sec cfg.log_writers_per_user) ~intensity:interactive
    ~action:(fun t time -> log_burst t time);
  arm ~base_rate:(per_sec 1.2) ~intensity:interactive ~action:(fun t time -> data_poke t time);
  arm ~base_rate:(per_sec 6.0) ~intensity:interactive ~action:(fun t time -> peek t time);
  arm ~base_rate:(per_sec 3.0) ~intensity:interactive ~action:(fun t time -> mail_save t time);
  (* The heartbeat runs at a per-user cadence of a few minutes. *)
  arm ~base_rate:(per_sec 55.) ~intensity:interactive ~action:(fun t time -> heartbeat t time);
  arm
    ~base_rate:(cfg.cron_jobs_per_night /. 86400.)
    ~intensity:Diurnal.eecs_batch_intensity
    ~action:(fun t time -> cron_job t time)

let compiles_run t = t.compiles
