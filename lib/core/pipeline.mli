(** One-call pipelines: simulate a system, get a trace.

    These wire together the engine, server, workload generators,
    record sorter and (optionally) the packet pipe + capture engine, so
    examples, tests and benches all drive the same code paths. *)

type run_stats = {
  records : int;  (** trace records emitted to the sink *)
  sessions : int;  (** interactive sessions started (CAMPUS) *)
  deliveries : int;  (** messages delivered (CAMPUS) *)
  compiles : int;  (** compile jobs (EECS) *)
  server_calls : int;
}

val simulate_campus :
  ?obs:Nt_obs.Obs.t ->
  ?config:Nt_workload.Email.config ->
  start:float ->
  stop:float ->
  sink:(Nt_trace.Record.t -> unit) ->
  unit ->
  run_stats
(** Run the CAMPUS email workload over [start, stop); records arrive at
    [sink] sorted by call time.

    [obs] (default: a private enabled registry) hosts the run's
    telemetry — [pipeline.records], [workload.*], [server.calls],
    [engine.*], [sorter.*] and a [simulate.campus] span — and the
    returned {!run_stats} is {e derived from those counters}, so the
    struct can never disagree with an exported snapshot. A disabled
    registry therefore yields all-zero stats. *)

val simulate_eecs :
  ?obs:Nt_obs.Obs.t ->
  ?config:Nt_workload.Research.config ->
  start:float ->
  stop:float ->
  sink:(Nt_trace.Record.t -> unit) ->
  unit ->
  run_stats

type pcap_stats = {
  run : run_stats;
  packets_written : int;
  packets_dropped : int;  (** lost at the monitor port *)
  snapshot : Nt_obs.Obs.snapshot;
      (** full registry snapshot taken after the run — the same
          counters the struct fields were read from *)
}

val campus_to_pcap :
  ?obs:Nt_obs.Obs.t ->
  ?config:Nt_workload.Email.config ->
  ?fault:Nt_sim.Fault.plan ->
  ?seed:int64 ->
  ?monitor_loss:float ->
  start:float ->
  stop:float ->
  writer:Nt_net.Pcap.writer ->
  unit ->
  pcap_stats
(** Full wire path: CAMPUS traffic as NFSv3-over-TCP jumbo-frame
    packets in a pcap stream, with optional capture loss — the input
    the paper's own tracer consumed. [fault] injects a full monitor
    fault plan (overrides [monitor_loss]); [seed] seeds the injector. *)

val eecs_to_pcap :
  ?obs:Nt_obs.Obs.t ->
  ?config:Nt_workload.Research.config ->
  ?fault:Nt_sim.Fault.plan ->
  ?seed:int64 ->
  ?monitor_loss:float ->
  start:float ->
  stop:float ->
  writer:Nt_net.Pcap.writer ->
  unit ->
  pcap_stats
(** EECS traffic as NFS-over-UDP packets (mixed v2/v3 clients). *)

val capture_pcap :
  ?obs:Nt_obs.Obs.t ->
  ?salvage:bool ->
  string ->
  Nt_trace.Capture.stats * Nt_trace.Record.t list
(** Decode a pcap byte string back into trace records — the passive
    tracer itself. [salvage] enables resync past corrupt pcap record
    headers (see {!Nt_net.Pcap}). [obs] is shared between the pcap
    reader and the capture engine (disjoint [capture.*] namespaces)
    and gains a [capture.decode] span. *)

type degraded_run = {
  simulated : int;  (** records pushed into both pipes *)
  clean : Nt_trace.Capture.stats;
  degraded : Nt_trace.Capture.stats;
  faults : Nt_sim.Fault.counts;  (** what was actually injected *)
  clean_records : Nt_trace.Record.t list;
  degraded_records : Nt_trace.Record.t list;
}

val run_degraded :
  ?seed:int64 ->
  ?mangle_flips:int ->
  transport:Nt_sim.Packet_pipe.transport ->
  plan:Nt_sim.Fault.plan ->
  Nt_trace.Record.t list ->
  degraded_run
(** Run the same records through a clean capture and a fault-injected
    one (same pipe seed, so the only difference is the plan), decoding
    the degraded pcap in salvage mode. [mangle_flips] additionally
    flips that many bytes of the degraded pcap stream itself —
    savefile-level corruption the salvage reader must absorb. Tests
    assert two things against the result: conservation (each injected
    fault appears in exactly one capture counter) and bounded analysis
    drift (clean vs degraded metrics stay within tolerance at realistic
    loss rates). *)

val analyze_records :
  ?obs:Nt_obs.Obs.t ->
  ?timeline:Nt_obs.Timeline.t ->
  ?jobs:int ->
  ?records_per_shard:int ->
  sections:Nt_par.Report.section list ->
  Nt_trace.Record.t list ->
  (Nt_par.Report.section * string) list
(** Run the paper's analyses over a time-sorted record list with the
    sharded map-merge engine (see {!Nt_par.Report.run}): [jobs] worker
    domains (default 1), [records_per_shard]-sized shards. The rendered
    text is byte-identical at any [jobs] setting. *)

val lint_records :
  ?obs:Nt_obs.Obs.t ->
  ?config:Nt_lint.Engine.config ->
  ?stats:Nt_trace.Capture.stats ->
  Nt_trace.Record.t list ->
  Nt_lint.Engine.t
(** Run the static checker over a record list (and optional capture
    stats); inspect the result with {!Nt_lint.Engine.findings} and
    friends. *)

type lint_oracle = { clean_lint : Nt_lint.Engine.t; degraded_lint : Nt_lint.Engine.t }

val lint_degraded : ?config:Nt_lint.Engine.config -> degraded_run -> lint_oracle
(** Lint both sides of a differential run. The linter is itself an
    oracle here: the clean side must come back finding-free while the
    degraded side must show findings from the family the fault plan
    predicts (loss ⇒ protocol, truncation/corruption ⇒ hygiene). *)

val campus_degraded :
  ?config:Nt_workload.Email.config ->
  ?seed:int64 ->
  ?mangle_flips:int ->
  plan:Nt_sim.Fault.plan ->
  start:float ->
  stop:float ->
  unit ->
  degraded_run
(** CAMPUS (TCP) differential run over a simulated interval. *)

val eecs_degraded :
  ?config:Nt_workload.Research.config ->
  ?seed:int64 ->
  ?mangle_flips:int ->
  plan:Nt_sim.Fault.plan ->
  start:float ->
  stop:float ->
  unit ->
  degraded_run
(** EECS (UDP) differential run over a simulated interval. *)

(** {1 Binary trace container (nttb/1)} *)

val read_tbin : ?obs:Nt_obs.Obs.t -> string -> Nt_tbin.stats * Nt_trace.Record.t list
(** Decode a [.ntb] file; decode failures are counted in the stats
    (and on [obs] under [tbin.*]), never raised. *)

val iter_tbin :
  ?obs:Nt_obs.Obs.t -> string -> (Nt_trace.Record.t -> unit) -> Nt_tbin.stats
(** Stream a [.ntb] file record by record without materializing it —
    the out-of-core reading path. *)

val load_trace :
  ?obs:Nt_obs.Obs.t -> ?tick:(unit -> unit) -> string -> Nt_trace.Record.t list
(** Load a trace from a source spec: [-] reads text records from
    stdin; [trace:PATH] / [tbin:PATH] force the format; a bare path is
    sniffed ([.ntb] extension or the [nttb/1] magic mean binary, text
    otherwise). [tick] fires once per record for progress meters. *)

val analyze_stream :
  ?obs:Nt_obs.Obs.t ->
  ?timeline:Nt_obs.Timeline.t ->
  ?jobs:int ->
  ?records_per_shard:int ->
  sections:Nt_par.Report.section list ->
  ((Nt_trace.Record.t -> unit) -> unit) ->
  (Nt_par.Report.section * string) list * int
(** {!analyze_records} without the list: the producer pushes records
    (e.g. straight from a simulator sink or {!iter_tbin}) and the
    report folds over fixed-size chunks with peak state of one chunk —
    see {!Nt_par.Report.run_stream}. Byte-identical with the
    materialized path at any [jobs]. *)
