(** Codec-drift rules: wire-type arm coverage in the binary codec and
    the on-disk format tag registry.

    [check sink ~codecs ~formats_unit ~units ~config_finding] runs
    both halves.  [codecs] is a list of
    [(type unit, variant type names, codec unit)] specs: every
    constructor of the named types must appear in the codec unit both
    in pattern position (encode dispatch) and construction position
    (decode dispatch).  [formats_unit] names the registry module whose
    top-level string bindings define the legal version tags; tag
    literals anywhere else are drift (name registered) or unregistered
    (name unknown), with [@@nt.allow] on the enclosing binding as the
    counted escape hatch.  Missing units or empty registries are
    configuration drift. *)

val parse_tag : string -> (string * string) option
(** Exposed for tests: "nttb/1\n" -> Some ("nttb", "1"). *)

val check :
  Finding.sink ->
  codecs:(string * string list * string) list ->
  formats_unit:string ->
  units:Loader.unit_info list ->
  config_finding:(string -> unit) ->
  unit
