lib/analysis/prior_studies.mli:
