(** Application-level I/O shapes shared by the workload generators.

    The paper's Figure 5 shows that long write runs are only ~60%
    c-consecutive: applications like mail clients (rewriting a mailbox
    message by message) and linkers (emitting sections) write several
    sequential blocks and then seek forward or backward. *)

val seeky_write :
  Nt_util.Prng.t ->
  Nt_sim.Client.session ->
  Nt_nfs.Fh.t ->
  total:int ->
  seg_min:int ->
  seg_max:int ->
  jump_prob:float ->
  sync:bool ->
  unit
(** Rewrite [total] bytes as segments of [seg_min]–[seg_max] bytes in a
    partially shuffled order: every byte is written exactly once (same
    volume and op count as a sequential rewrite), but with probability
    [jump_prob] a segment trades places with a nearby later one, so the
    stream seeks forward and backward the way mail-client compaction
    and linker section emission do. *)

val seeky_read :
  Nt_util.Prng.t ->
  Nt_sim.Client.session ->
  Nt_nfs.Fh.t ->
  file_size:int ->
  stretches:int ->
  stretch_min:int ->
  stretch_max:int ->
  pause:float * float ->
  unit
(** Random-stretch reads: [stretches] sequential reads at random
    offsets, separated by think-time drawn from [pause]. *)
