lib/analysis/seqmetric.mli: Io_log
