lib/sim/sim_fs.mli: Nt_nfs
