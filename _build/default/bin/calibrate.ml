(* Calibration harness: simulate one day (Wednesday) of each system and
   compare the headline Table 2 statistics against the paper, rescaled
   by the configured population fraction. Used while tuning workload
   constants; kept as a fast sanity-check tool. *)

let () =
  let day = Nt_util.Trace_week.time_of ~day:Nt_util.Trace_week.Wed ~hour:0 ~minute:0 in
  let stop = day +. 86400. in
  let report label ~scale ~(target : Nt_analysis.Prior_studies.daily_activity) stats_fn =
    let summary = Nt_analysis.Summary.create () in
    let names = Nt_analysis.Names.create () in
    let run : Nt_core.Pipeline.run_stats =
      stats_fn (fun r ->
          Nt_analysis.Summary.observe summary r;
          Nt_analysis.Names.observe names r)
    in
    let d = Nt_analysis.Summary.daily ~scale summary in
    Printf.printf "\n=== %s (1 day, scale %.3f) — rescaled vs paper Table 2 ===\n" label scale;
    Printf.printf "records=%d sessions=%d deliveries=%d compiles=%d\n" run.records run.sessions
      run.deliveries run.compiles;
    let row name measured paper =
      Printf.printf "  %-18s %10.3f   paper %10.3f   ratio %5.2f\n" name measured paper
        (if paper = 0. then 0. else measured /. paper)
    in
    row "total ops (M/day)" d.total_ops_m target.total_ops_m;
    row "data read (GB)" d.data_read_gb target.data_read_gb;
    row "read ops (M)" d.read_ops_m target.read_ops_m;
    row "data written (GB)" d.data_written_gb target.data_written_gb;
    row "write ops (M)" d.write_ops_m target.write_ops_m;
    row "R/W bytes" d.rw_byte_ratio target.rw_byte_ratio;
    row "R/W ops" d.rw_op_ratio target.rw_op_ratio;
    Printf.printf "  data ops %% of calls: %.1f%%  unique files: %d\n"
      (Nt_analysis.Summary.data_ops_pct summary)
      (Nt_analysis.Summary.unique_files_accessed summary);
    Printf.printf "  locks among created+deleted: %.1f%% (n=%d)\n"
      (Nt_analysis.Names.lock_created_deleted_pct names)
      (Nt_analysis.Names.created_deleted_total names);
    List.iter
      (fun (cat, (s : Nt_analysis.Names.category_stats)) ->
        Printf.printf "    %-14s files=%5d cd=%5d medsz=%9.0f medlife=%8.2f ro%%=%4.1f wo%%=%4.1f\n"
          (Nt_analysis.Names.category_to_string cat)
          s.files_seen s.created_deleted s.median_size s.median_lifetime s.read_only_pct
          s.write_only_pct)
      (Nt_analysis.Names.stats names)
  in
  report "CAMPUS" ~scale:0.01 ~target:Nt_analysis.Prior_studies.campus_week (fun sink ->
      Nt_core.Pipeline.simulate_campus ~start:day ~stop ~sink ());
  report "EECS" ~scale:0.01 ~target:Nt_analysis.Prior_studies.eecs_week (fun sink ->
      Nt_core.Pipeline.simulate_eecs ~start:day ~stop ~sink ())
