examples/quickstart.mli:
