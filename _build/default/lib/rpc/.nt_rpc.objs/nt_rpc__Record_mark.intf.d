lib/rpc/record_mark.mli:
