type t = int list

let empty = []
let add t x = x :: t
let merge a b = a @ b
let footprint t = (List.length t, 3 * List.length t)
