module A = Nt_analysis

let summary =
  {
    Driver.name = "summary";
    init = A.Summary.create;
    init_shard = A.Summary.create;
    observe = A.Summary.observe;
    merge = A.Summary.merge;
  }

let hourly =
  {
    Driver.name = "hourly";
    init = A.Hourly.create;
    init_shard = A.Hourly.create;
    observe = A.Hourly.observe;
    merge = A.Hourly.merge;
  }

let io_log =
  {
    Driver.name = "io_log";
    init = A.Io_log.create;
    init_shard = A.Io_log.create;
    observe = A.Io_log.observe;
    merge = A.Io_log.merge;
  }

let names =
  {
    Driver.name = "names";
    init = A.Names.create;
    init_shard = A.Names.create_shard;
    observe = A.Names.observe;
    merge = A.Names.merge;
  }

let lifetime cfg =
  {
    Driver.name = "lifetime";
    init = (fun () -> A.Lifetime.create cfg);
    init_shard = (fun () -> A.Lifetime.create_shard cfg);
    observe = A.Lifetime.observe;
    merge = A.Lifetime.merge;
  }

let runs ?obs ?timeline ?(window = 0.01) ?(gap = 30.) ?chunk ~jump_blocks pool log =
  let files = A.Io_log.sorted_files log in
  let per_chunk =
    Driver.map_chunks ?obs ?timeline ?chunk pool ~name:"runs"
      (fun chunk_files ->
        List.concat_map
          (fun (_, accesses) -> A.Runs.analyze_file ~window ~gap ~jump_blocks accesses)
          (Array.to_list chunk_files))
      files
  in
  List.concat per_chunk

let seq_curve ?obs ?timeline ?(window = 0.01) ?chunk pool log =
  let files = A.Io_log.sorted_files log in
  let tallies =
    Driver.map_chunks ?obs ?timeline ?chunk pool ~name:"seqmetric"
      (fun chunk_files ->
        let t = A.Seqmetric.tally () in
        Array.iter (fun (_, accesses) -> A.Seqmetric.tally_file ~window t accesses) chunk_files;
        t)
      files
  in
  A.Seqmetric.curve_of_tally
    (List.fold_left A.Seqmetric.tally_merge (A.Seqmetric.tally ()) tallies)
