(* ONC RPC message layer and TCP record-marking tests. *)

module E = Nt_xdr.Encode
module Rpc = Nt_rpc.Rpc_msg
module Rm = Nt_rpc.Record_mark

let encode_call c =
  let e = E.create () in
  Rpc.encode_call e c;
  E.contents e

let encode_reply r =
  let e = E.create () in
  Rpc.encode_reply e r;
  E.contents e

let sample_call =
  {
    Rpc.xid = 0xDEADBEEF;
    rpcvers = 2;
    prog = Rpc.nfs_program;
    vers = 3;
    proc = 6;
    cred = Rpc.Auth_unix { stamp = 99; machine = "wks1"; uid = 501; gid = 100; gids = [ 100; 20 ] };
    verf = Rpc.Auth_null;
  }

let test_call_roundtrip () =
  let s = encode_call sample_call in
  match Rpc.decode s ~pos:0 ~len:(String.length s) with
  | Rpc.Call c, body ->
      Alcotest.(check int) "xid" sample_call.xid c.xid;
      Alcotest.(check int) "prog" Rpc.nfs_program c.prog;
      Alcotest.(check int) "vers" 3 c.vers;
      Alcotest.(check int) "proc" 6 c.proc;
      Alcotest.(check int) "body at end" (String.length s) body;
      (match c.cred with
      | Rpc.Auth_unix u ->
          Alcotest.(check int) "uid" 501 u.uid;
          Alcotest.(check int) "gid" 100 u.gid;
          Alcotest.(check string) "machine" "wks1" u.machine;
          Alcotest.(check (list int)) "gids" [ 100; 20 ] u.gids
      | _ -> Alcotest.fail "expected Auth_unix")
  | Rpc.Reply _, _ -> Alcotest.fail "expected call"

let test_call_auth_null () =
  let c = { sample_call with cred = Rpc.Auth_null } in
  let s = encode_call c in
  match Rpc.decode s ~pos:0 ~len:(String.length s) with
  | Rpc.Call c', _ -> Alcotest.(check bool) "auth null" true (c'.cred = Rpc.Auth_null)
  | _ -> Alcotest.fail "expected call"

let test_auth_other_preserved () =
  let c = { sample_call with cred = Rpc.Auth_other (6, "gss-blob") } in
  let s = encode_call c in
  match Rpc.decode s ~pos:0 ~len:(String.length s) with
  | Rpc.Call c', _ -> (
      match c'.cred with
      | Rpc.Auth_other (flavor, body) ->
          Alcotest.(check int) "flavor" 6 flavor;
          Alcotest.(check string) "body" "gss-blob" body
      | _ -> Alcotest.fail "expected Auth_other")
  | _ -> Alcotest.fail "expected call"

let roundtrip_reply r =
  let s = encode_reply r in
  match Rpc.decode s ~pos:0 ~len:(String.length s) with
  | Rpc.Reply r', _ -> r'
  | Rpc.Call _, _ -> Alcotest.fail "expected reply"

let test_reply_success () =
  let r = roundtrip_reply { Rpc.xid = 7; verf = Rpc.Auth_null; status = Rpc.Accepted Rpc.Success } in
  Alcotest.(check int) "xid" 7 r.xid;
  Alcotest.(check bool) "success" true (r.status = Rpc.Accepted Rpc.Success)

let test_reply_statuses () =
  List.iter
    (fun status ->
      let r = roundtrip_reply { Rpc.xid = 1; verf = Rpc.Auth_null; status } in
      Alcotest.(check bool) "status survives" true (r.status = status))
    [
      Rpc.Accepted Rpc.Prog_unavail;
      Rpc.Accepted (Rpc.Prog_mismatch (2, 3));
      Rpc.Accepted Rpc.Proc_unavail;
      Rpc.Accepted Rpc.Garbage_args;
      Rpc.Accepted Rpc.System_err;
      Rpc.Denied (Rpc.Rpc_mismatch (2, 2));
      Rpc.Denied (Rpc.Auth_error 5);
    ]

let test_bad_rpc_version () =
  let c = { sample_call with rpcvers = 3 } in
  let s = encode_call c in
  Alcotest.(check bool) "rpcvers 3 rejected" true
    (try
       ignore (Rpc.decode s ~pos:0 ~len:(String.length s));
       false
     with Nt_xdr.Decode.Error _ -> true)

let test_garbage_rejected () =
  Alcotest.(check bool) "garbage rejected" true
    (try
       ignore (Rpc.decode "\x00\x00\x00\x01\x00\x00\x00\x09" ~pos:0 ~len:8);
       false
     with Nt_xdr.Decode.Error _ -> true)

(* --- record marking --- *)

let test_frame_single () =
  let framed = Rm.frame "hello" in
  Alcotest.(check int) "4-byte header" 9 (String.length framed);
  Alcotest.(check int) "last-fragment bit" 0x80 (Char.code framed.[0]);
  let r = Rm.create_reassembler () in
  Alcotest.(check (list string)) "roundtrip" [ "hello" ] (Rm.push r framed)

let test_frame_fragmented () =
  let msg = String.init 100 (fun i -> Char.chr (i land 0xFF)) in
  let framed = Rm.frame_fragmented ~fragment_size:7 msg in
  let r = Rm.create_reassembler () in
  Alcotest.(check (list string)) "reassembled" [ msg ] (Rm.push r framed)

let test_byte_at_a_time () =
  let msg = "the quick brown fox" in
  let framed = Rm.frame msg in
  let r = Rm.create_reassembler () in
  let out = ref [] in
  String.iter (fun c -> out := !out @ Rm.push r (String.make 1 c)) framed;
  Alcotest.(check (list string)) "byte-wise delivery" [ msg ] !out

let test_multiple_records_one_push () =
  let r = Rm.create_reassembler () in
  let stream = Rm.frame "one" ^ Rm.frame "two" ^ Rm.frame "three" in
  Alcotest.(check (list string)) "coalesced records" [ "one"; "two"; "three" ] (Rm.push r stream)

let test_empty_record () =
  let r = Rm.create_reassembler () in
  Alcotest.(check (list string)) "empty record" [ "" ] (Rm.push r (Rm.frame ""))

let test_pending_bytes () =
  let r = Rm.create_reassembler () in
  let framed = Rm.frame "abcdefgh" in
  ignore (Rm.push r (String.sub framed 0 6));
  Alcotest.(check bool) "bytes pending" true (Rm.pending_bytes r > 0);
  ignore (Rm.push r (String.sub framed 6 (String.length framed - 6)));
  Alcotest.(check int) "drained" 0 (Rm.pending_bytes r)

let test_desync_resync () =
  (* Garbage with an absurd length header, then a valid record: the
     reassembler must scan past the junk and recover. *)
  let r = Rm.create_reassembler () in
  let junk = "\x7F\xFF\xFF\xFF\x00\x00\x00\x00" in
  let good = Rm.frame "recovered" in
  let out = Rm.push r (junk ^ good) in
  Alcotest.(check (list string)) "resynced" [ "recovered" ] out

let prop_random_chunking =
  QCheck.Test.make ~name:"record marking survives arbitrary chunking" ~count:200
    QCheck.(pair (list_of_size Gen.(1 -- 5) (string_of_size Gen.(0 -- 64))) (int_range 1 13))
    (fun (messages, chunk) ->
      let stream = String.concat "" (List.map Rm.frame messages) in
      let r = Rm.create_reassembler () in
      let out = ref [] in
      let n = String.length stream in
      let i = ref 0 in
      while !i < n do
        let len = min chunk (n - !i) in
        out := !out @ Rm.push r (String.sub stream !i len);
        i := !i + len
      done;
      !out = messages)

let prop_fragmentation_equivalence =
  QCheck.Test.make ~name:"fragment size does not change the message" ~count:200
    QCheck.(pair (string_of_size Gen.(1 -- 200)) (int_range 1 64))
    (fun (msg, frag) ->
      let r = Rm.create_reassembler () in
      Rm.push r (Rm.frame_fragmented ~fragment_size:frag msg) = [ msg ])

let () =
  Alcotest.run "nt_rpc"
    [
      ( "messages",
        [
          Alcotest.test_case "call roundtrip" `Quick test_call_roundtrip;
          Alcotest.test_case "auth null" `Quick test_call_auth_null;
          Alcotest.test_case "auth other preserved" `Quick test_auth_other_preserved;
          Alcotest.test_case "reply success" `Quick test_reply_success;
          Alcotest.test_case "reply statuses" `Quick test_reply_statuses;
          Alcotest.test_case "bad rpc version" `Quick test_bad_rpc_version;
          Alcotest.test_case "garbage rejected" `Quick test_garbage_rejected;
        ] );
      ( "record-marking",
        [
          Alcotest.test_case "single frame" `Quick test_frame_single;
          Alcotest.test_case "fragmented" `Quick test_frame_fragmented;
          Alcotest.test_case "byte at a time" `Quick test_byte_at_a_time;
          Alcotest.test_case "coalesced records" `Quick test_multiple_records_one_push;
          Alcotest.test_case "empty record" `Quick test_empty_record;
          Alcotest.test_case "pending bytes" `Quick test_pending_bytes;
          Alcotest.test_case "desync resync" `Quick test_desync_resync;
          QCheck_alcotest.to_alcotest prop_random_chunking;
          QCheck_alcotest.to_alcotest prop_fragmentation_equivalence;
        ] );
    ]
